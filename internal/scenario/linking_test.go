package scenario

import (
	"reflect"
	"testing"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/ieee80211"
)

// TestMACSpacesDisjointFromRandomizedBlock guards the collision-freedom
// invariant: every identity MAC space the simulation allocates from — the
// classic 0x02:0x00 venue block, the per-site 0x06:… blocks, the far-field
// 0x02:0x10 pedestrian block and the 0x0a:… infrastructure block — is
// disjoint from the 0x1a randomized block DerivedRandomMAC rotates into.
// A rotated MAC aliasing a stable identity would silently corrupt the
// linker's ground truth.
func TestMACSpacesDisjointFromRandomizedBlock(t *testing.T) {
	var identities []ieee80211.MAC

	classic := &macAllocator{}
	for i := 0; i < 200; i++ {
		identities = append(identities, classic.mac(), farFieldMAC(i))
	}
	for siteIdx := 0; siteIdx < 8; siteIdx++ {
		perSite := &macAllocator{space: siteMACSpace(siteIdx)}
		for i := 0; i < 50; i++ {
			identities = append(identities, perSite.mac())
		}
	}
	identities = append(identities, attackerMAC, legitAPMAC)

	seen := make(map[ieee80211.MAC]bool, 4*len(identities))
	for _, id := range identities {
		if id[0] == ieee80211.RandomizedMACPrefix {
			t.Fatalf("identity MAC %v allocated inside the randomized block", id)
		}
		if seen[id] {
			t.Fatalf("identity MAC %v allocated twice", id)
		}
		seen[id] = true
	}
	// Rotations of every identity stay outside all identity blocks and
	// never collide with each other or any identity.
	for _, id := range identities {
		for n := uint32(1); n <= 3; n++ {
			m := ieee80211.DerivedRandomMAC(id, n)
			if m[0] != ieee80211.RandomizedMACPrefix {
				t.Fatalf("rotation %d of %v left the randomized block: %v", n, id, m)
			}
			if seen[m] {
				t.Fatalf("rotated MAC %v collides (identity %v, rotation %d)", m, id, n)
			}
			seen[m] = true
		}
	}
}

func TestFingerprintForStableAndBounded(t *testing.T) {
	alloc := &macAllocator{}
	counts := make(map[uint32]int)
	for i := 0; i < 500; i++ {
		m := alloc.mac()
		fp := fingerprintFor(m, 0)
		if fp < 1 || fp > defaultFingerprintModels {
			t.Fatalf("fingerprint %d out of [1, %d]", fp, defaultFingerprintModels)
		}
		if again := fingerprintFor(m, 0); again != fp {
			t.Fatalf("fingerprint of %v not stable: %d then %d", m, fp, again)
		}
		counts[fp]++
	}
	// With 500 phones over 24 models, fingerprints must collide — that is
	// the point of a chipset personality (it corroborates, never identifies).
	if len(counts) < 2 {
		t.Fatalf("all phones share one fingerprint: %v", counts)
	}
	for fp, n := range counts {
		if n < 2 {
			continue
		}
		_ = fp
		return
	}
	t.Error("no fingerprint collisions across 500 phones and 24 models")
}

func TestApplyRandomizationUpgradesLegacyFlag(t *testing.T) {
	mac := ieee80211.MAC{0x02, 0, 0, 0, 0, 1}

	// No scenario policy: the drawn flag stands (historical per-scan
	// rotation without fingerprints, byte-identical to the seed).
	ccfg := client.Config{MAC: mac, RandomizeMAC: true}
	(Config{}).applyRandomization(&ccfg)
	if !ccfg.RandomizeMAC || ccfg.Randomization != client.RandomizeNone {
		t.Errorf("legacy flag rewritten without a policy: %+v", ccfg)
	}

	// Policy set: flag traded for the policy plus the derived fingerprint.
	ccfg = client.Config{MAC: mac, RandomizeMAC: true}
	cfg := Config{Randomization: client.RandomizePerBurst, RandomizeEvery: time.Minute}
	cfg.applyRandomization(&ccfg)
	if ccfg.RandomizeMAC {
		t.Error("legacy flag survived the policy upgrade")
	}
	if ccfg.Randomization != client.RandomizePerBurst || ccfg.RandomizeEvery != time.Minute {
		t.Errorf("policy not applied: %+v", ccfg)
	}
	if ccfg.Fingerprint == 0 {
		t.Error("fingerprint not derived")
	}

	// A phone whose flag was never drawn stays un-randomized regardless of
	// the scenario policy.
	ccfg = client.Config{MAC: mac}
	cfg.applyRandomization(&ccfg)
	if ccfg.Randomization != client.RandomizeNone || ccfg.Fingerprint != 0 {
		t.Errorf("non-randomizing phone upgraded: %+v", ccfg)
	}
}

func TestValidateLinking(t *testing.T) {
	city, hm := testCity(t)
	base := Config{City: city, HeatMap: hm, Venue: CanteenVenue(), Attack: CityHunter, Seed: 1}

	bad := base
	bad.Randomization = client.RandomizationPolicy(99)
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("unknown randomization policy accepted")
	}
	bad = base
	bad.RandomizeEvery = -time.Second
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("negative randomize-every accepted")
	}
	bad = base
	bad.FingerprintModels = -1
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("negative fingerprint models accepted")
	}
	bad = base
	bad.Linker = LinkerKind(99)
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("unknown linker kind accepted")
	}
}

// TestRandomizationDeterminism is the CI smoke: for every randomization
// policy, two same-seed runs under the composite linker agree on every
// outcome, tally and the full linker report. A divergence means rotation
// state leaked into (or out of) some shared RNG stream.
func TestRandomizationDeterminism(t *testing.T) {
	for name, policy := range RandomizationByName {
		t.Run(name, func(t *testing.T) {
			run := func() *Result {
				cfg := baseConfig(t, CanteenVenue(), CityHunter, 5)
				cfg.Randomization = policy
				cfg.Linker = LinkerComposite
				res, err := Run(cfg, 4, 2*time.Minute)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return res
			}
			a, b := run(), run()
			if a.Tally != b.Tally {
				t.Errorf("tallies diverge:\n first %+v\nsecond %+v", a.Tally, b.Tally)
			}
			if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
				t.Error("outcomes diverge between same-seed runs")
			}
			if !reflect.DeepEqual(a.Links, b.Links) {
				t.Errorf("linker reports diverge:\n first %+v\nsecond %+v", a.Links, b.Links)
			}
		})
	}
}
