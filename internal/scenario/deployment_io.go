package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/mobility"
)

// deploymentFile is the JSON form of a deployment plan: the sites (in the
// venue format SaveVenue uses), the knowledge plane, and the roaming
// model. The Base experiment configuration is NOT part of the format —
// like campaign files, a deployment plan describes where and how to
// deploy, while the city, attack kind and population knobs come from the
// caller (or the CLI flags).
type deploymentFile struct {
	Sites        []venueFile  `json:"sites"`
	Knowledge    string       `json:"knowledge"`
	SyncEverySec float64      `json:"syncEverySeconds,omitempty"`
	RoamFraction float64      `json:"roamFraction"`
	Transit      *transitFile `json:"transit,omitempty"`
}

type transitFile struct {
	SpeedMinMPS float64 `json:"speedMinMps"`
	SpeedMaxMPS float64 `json:"speedMaxMps"`
}

var knowledgeNames = map[string]KnowledgePlane{
	"isolated":      Isolated,
	"periodic-sync": PeriodicSync,
	"shared":        Shared,
}

// SaveDeployment writes a deployment plan as JSON. Base is intentionally
// not serialized (see deploymentFile); everything else round-trips.
func SaveDeployment(w io.Writer, dcfg DeploymentConfig) error {
	df := deploymentFile{
		RoamFraction: dcfg.RoamFraction,
	}
	for name, plane := range knowledgeNames {
		if plane == dcfg.Knowledge {
			df.Knowledge = name
		}
	}
	if df.Knowledge == "" {
		return fmt.Errorf("scenario: knowledge plane %v not encodable", dcfg.Knowledge)
	}
	if len(dcfg.Sites) == 0 {
		return fmt.Errorf("scenario: deployment needs at least one site")
	}
	for i, v := range dcfg.Sites {
		vf, err := encodeVenue(v)
		if err != nil {
			return fmt.Errorf("scenario: site %d: %w", i, err)
		}
		df.Sites = append(df.Sites, vf)
	}
	if dcfg.SyncEvery > 0 {
		df.SyncEverySec = dcfg.SyncEvery.Seconds()
	}
	if dcfg.Transit != (mobility.TransitModel{}) {
		df.Transit = &transitFile{
			SpeedMinMPS: dcfg.Transit.SpeedMin,
			SpeedMaxMPS: dcfg.Transit.SpeedMax,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(df); err != nil {
		return fmt.Errorf("scenario: encode deployment: %w", err)
	}
	return nil
}

// LoadDeployment reads a deployment plan previously written by
// SaveDeployment (or hand-written in the same format) and validates it.
// The returned config has an empty Base; fill it before running.
func LoadDeployment(r io.Reader) (DeploymentConfig, error) {
	var df deploymentFile
	if err := json.NewDecoder(r).Decode(&df); err != nil {
		return DeploymentConfig{}, fmt.Errorf("scenario: decode deployment: %w", err)
	}
	var dcfg DeploymentConfig
	if df.Knowledge == "" {
		df.Knowledge = "isolated"
	}
	plane, ok := knowledgeNames[df.Knowledge]
	if !ok {
		return DeploymentConfig{}, fmt.Errorf("scenario: unknown knowledge plane %q", df.Knowledge)
	}
	dcfg.Knowledge = plane
	if len(df.Sites) == 0 {
		return DeploymentConfig{}, fmt.Errorf("scenario: deployment needs at least one site")
	}
	if len(df.Sites) > MaxSites {
		return DeploymentConfig{}, fmt.Errorf("scenario: %d sites exceed the %d-site limit", len(df.Sites), MaxSites)
	}
	for i, vf := range df.Sites {
		v, err := decodeVenue(vf)
		if err != nil {
			return DeploymentConfig{}, fmt.Errorf("scenario: site %d: %w", i, err)
		}
		dcfg.Sites = append(dcfg.Sites, v)
	}
	if df.RoamFraction < 0 || df.RoamFraction > 1 {
		return DeploymentConfig{}, fmt.Errorf("scenario: roam fraction %v outside [0,1]", df.RoamFraction)
	}
	dcfg.RoamFraction = df.RoamFraction
	if df.SyncEverySec < 0 {
		return DeploymentConfig{}, fmt.Errorf("scenario: sync period %vs must not be negative", df.SyncEverySec)
	}
	dcfg.SyncEvery = time.Duration(df.SyncEverySec * float64(time.Second))
	if df.Transit != nil {
		dcfg.Transit = mobility.TransitModel{
			SpeedMin: df.Transit.SpeedMinMPS,
			SpeedMax: df.Transit.SpeedMaxMPS,
		}
		if err := dcfg.Transit.Validate(); err != nil {
			return DeploymentConfig{}, fmt.Errorf("scenario: %w", err)
		}
	}
	return dcfg, nil
}
