package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/mobility"
)

// deploymentFile is the JSON form of a deployment plan: the sites (in the
// venue format SaveVenue uses), the knowledge plane, and the roaming
// model. The Base experiment configuration is NOT part of the format —
// like campaign files, a deployment plan describes where and how to
// deploy, while the city, attack kind and population knobs come from the
// caller (or the CLI flags).
type deploymentFile struct {
	Sites        []venueFile  `json:"sites"`
	Knowledge    string       `json:"knowledge"`
	SyncEverySec float64      `json:"syncEverySeconds,omitempty"`
	RoamFraction float64      `json:"roamFraction"`
	Transit      *transitFile `json:"transit,omitempty"`
	// Partitions selects the execution engine (0 classic serialized, -1
	// one partition per site, positive an explicit count); omitted for 0
	// so every pre-partitioning plan round-trips byte-identically.
	Partitions int `json:"partitions,omitempty"`
}

type transitFile struct {
	SpeedMinMPS float64 `json:"speedMinMps"`
	SpeedMaxMPS float64 `json:"speedMaxMps"`
}

var knowledgeNames = map[string]KnowledgePlane{
	"isolated":      Isolated,
	"periodic-sync": PeriodicSync,
	"shared":        Shared,
}

// SaveDeployment writes a deployment plan as JSON. Base is intentionally
// not serialized (see deploymentFile); everything else round-trips.
//
// Deprecated: new code should persist deployments inside a versioned plan
// envelope via SavePlan (plan.Save); this standalone format is kept for
// compatibility and emits byte-identical output.
func SaveDeployment(w io.Writer, dcfg DeploymentConfig) error {
	df, err := encodeDeployment(dcfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(df); err != nil {
		return fmt.Errorf("scenario: encode deployment: %w", err)
	}
	return nil
}

// EncodeDeploymentJSON renders a deployment plan in its canonical
// (compact) file form — the payload the plan envelope embeds.
func EncodeDeploymentJSON(dcfg DeploymentConfig) (json.RawMessage, error) {
	df, err := encodeDeployment(dcfg)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(df)
	if err != nil {
		return nil, fmt.Errorf("scenario: encode deployment: %w", err)
	}
	return data, nil
}

func encodeDeployment(dcfg DeploymentConfig) (deploymentFile, error) {
	df := deploymentFile{
		RoamFraction: dcfg.RoamFraction,
	}
	for name, plane := range knowledgeNames {
		if plane == dcfg.Knowledge {
			df.Knowledge = name
		}
	}
	if df.Knowledge == "" {
		return deploymentFile{}, fmt.Errorf("scenario: knowledge plane %v not encodable", dcfg.Knowledge)
	}
	if len(dcfg.Sites) == 0 {
		return deploymentFile{}, fmt.Errorf("scenario: deployment needs at least one site")
	}
	for i, v := range dcfg.Sites {
		vf, err := encodeVenue(v)
		if err != nil {
			return deploymentFile{}, fmt.Errorf("scenario: site %d: %w", i, err)
		}
		df.Sites = append(df.Sites, vf)
	}
	if dcfg.SyncEvery > 0 {
		df.SyncEverySec = dcfg.SyncEvery.Seconds()
	}
	if dcfg.Transit != (mobility.TransitModel{}) {
		df.Transit = &transitFile{
			SpeedMinMPS: dcfg.Transit.SpeedMin,
			SpeedMaxMPS: dcfg.Transit.SpeedMax,
		}
	}
	df.Partitions = dcfg.Partitions
	return df, nil
}

// LoadDeployment reads a deployment plan previously written by
// SaveDeployment (or hand-written in the same format) and validates it.
// The returned config has an empty Base; fill it before running.
//
// Deprecated: new code should load plans through LoadPlan (plan.Load),
// which wraps the same codec in a versioned envelope with strict
// unknown-field validation. LoadDeployment remains permissive for
// existing files.
func LoadDeployment(r io.Reader) (DeploymentConfig, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return DeploymentConfig{}, fmt.Errorf("scenario: decode deployment: %w", err)
	}
	return DecodeDeploymentJSON(data, false)
}

// DecodeDeploymentJSON parses and validates a deployment plan in the
// SaveDeployment format. With strict set, unknown JSON fields anywhere in
// the document are rejected (the plan-envelope contract); without it the
// decode is permissive, as LoadDeployment has always been.
func DecodeDeploymentJSON(data []byte, strict bool) (DeploymentConfig, error) {
	var df deploymentFile
	dec := json.NewDecoder(bytes.NewReader(data))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&df); err != nil {
		return DeploymentConfig{}, fmt.Errorf("scenario: decode deployment: %w", err)
	}
	var dcfg DeploymentConfig
	if df.Knowledge == "" {
		df.Knowledge = "isolated"
	}
	plane, ok := knowledgeNames[df.Knowledge]
	if !ok {
		return DeploymentConfig{}, fmt.Errorf("scenario: unknown knowledge plane %q", df.Knowledge)
	}
	dcfg.Knowledge = plane
	for i, vf := range df.Sites {
		v, err := decodeVenue(vf)
		if err != nil {
			return DeploymentConfig{}, fmt.Errorf("scenario: site %d: %w", i, err)
		}
		dcfg.Sites = append(dcfg.Sites, v)
	}
	dcfg.RoamFraction = df.RoamFraction
	dcfg.SyncEvery = time.Duration(df.SyncEverySec * float64(time.Second))
	if df.Transit != nil {
		dcfg.Transit = mobility.TransitModel{
			SpeedMin: df.Transit.SpeedMinMPS,
			SpeedMax: df.Transit.SpeedMaxMPS,
		}
	}
	dcfg.Partitions = df.Partitions
	if err := dcfg.Validate(); err != nil {
		return DeploymentConfig{}, fmt.Errorf("scenario: %w", err)
	}
	return dcfg, nil
}
