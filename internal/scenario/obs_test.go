package scenario

import (
	"testing"
	"time"
)

// TestObservabilityDeterminism runs the same seed twice with every
// observability surface enabled and requires byte-identical metrics
// snapshots and journals: instrumentation must never consume run
// randomness or otherwise perturb the schedule.
func TestObservabilityDeterminism(t *testing.T) {
	invoke := func() *Result {
		cfg := baseConfig(t, CanteenVenue(), CityHunter, 5)
		cfg.Metrics = true
		cfg.FlightRecorderCap = 256
		cfg.SpanTrace = true
		res, err := Run(cfg, 4, 3*time.Minute)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := invoke(), invoke()

	if got, want := a.Metrics.String(), b.Metrics.String(); got != want {
		t.Errorf("same-seed metrics diverged:\n--- first ---\n%s\n--- second ---\n%s", got, want)
	}
	if a.Metrics.Value("sim_events_executed") == 0 {
		t.Error("sim_events_executed missing from snapshot")
	}
	if a.Metrics.Value("scenario_virtual_seconds") != 180 {
		t.Errorf("scenario_virtual_seconds = %v, want 180",
			a.Metrics.Value("scenario_virtual_seconds"))
	}

	ea, eb := a.Journal.Events(), b.Journal.Events()
	if len(ea) != len(eb) {
		t.Fatalf("journal lengths diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Errorf("journal event %d diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}

	if a.Spans == nil || a.Spans.Len() == 0 {
		t.Fatal("span trace empty")
	}
	cats := make(map[string]bool)
	for _, c := range a.Spans.Categories() {
		cats[c] = true
	}
	if !cats["client"] {
		t.Errorf("span trace missing client lifecycle category (got %v)", a.Spans.Categories())
	}
}

// TestObservabilityOffByDefault checks the zero-config path carries no
// observability state, so the default run pays only nil-check branches.
func TestObservabilityOffByDefault(t *testing.T) {
	res, err := Run(baseConfig(t, CanteenVenue(), KARMA, 2), 4, time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics != nil || res.Journal != nil || res.Spans != nil {
		t.Errorf("observability attached without being requested: metrics=%v journal=%v spans=%v",
			res.Metrics != nil, res.Journal != nil, res.Spans != nil)
	}
}

// TestTraceDroppedSurfaced arms the pcap monitor with a tiny cap so the
// run overflows it, and checks the drop count lands in the Result and the
// first drop is journalled.
func TestTraceDroppedSurfaced(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 5)
	cfg.Trace = true
	cfg.TraceMaxEntries = 10
	cfg.FlightRecorderCap = 64
	res, err := Run(cfg, 4, 3*time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TraceDropped == 0 {
		t.Fatal("expected the 10-entry capture to overflow")
	}
	if res.Trace.Dropped != res.TraceDropped {
		t.Errorf("Result.TraceDropped = %d, monitor counted %d", res.TraceDropped, res.Trace.Dropped)
	}
	found := false
	for _, e := range res.Journal.Events() {
		if e.Type == "trace-drop" {
			found = true
			break
		}
	}
	if !found {
		t.Error("first capture drop was not journalled")
	}
}
