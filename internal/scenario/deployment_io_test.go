package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/mobility"
)

func TestDeploymentRoundTrip(t *testing.T) {
	in := DeploymentConfig{
		Sites:        []Venue{CanteenVenue(), PassageVenue(), MallVenue()},
		Knowledge:    PeriodicSync,
		SyncEvery:    45 * time.Second,
		RoamFraction: 0.35,
		Transit:      mobility.TransitModel{SpeedMin: 1.0, SpeedMax: 2.0},
	}
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, in); err != nil {
		t.Fatalf("save: %v", err)
	}
	out, err := LoadDeployment(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if out.Knowledge != in.Knowledge || out.SyncEvery != in.SyncEvery ||
		out.RoamFraction != in.RoamFraction || out.Transit != in.Transit {
		t.Fatalf("plane fields did not round-trip: %+v", out)
	}
	if len(out.Sites) != len(in.Sites) {
		t.Fatalf("%d sites round-tripped to %d", len(in.Sites), len(out.Sites))
	}
	for i := range in.Sites {
		if out.Sites[i].Name != in.Sites[i].Name || out.Sites[i].Position != in.Sites[i].Position {
			t.Errorf("site %d diverged: %+v", i, out.Sites[i])
		}
	}
	// A loaded plan plus a Base must actually run.
	out.Base = baseConfig(t, Venue{}, CityHunter, 1)
	out.Base.ArrivalScale = 0.25
	if _, err := RunDeployment(out, 0, time.Minute); err != nil {
		t.Fatalf("loaded deployment does not run: %v", err)
	}
}

func TestSaveDeploymentErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, DeploymentConfig{Knowledge: KnowledgePlane(7), Sites: []Venue{CanteenVenue()}}); err == nil ||
		!strings.Contains(err.Error(), "not encodable") {
		t.Errorf("bad knowledge plane: %v", err)
	}
	if err := SaveDeployment(&buf, DeploymentConfig{}); err == nil ||
		!strings.Contains(err.Error(), "at least one site") {
		t.Errorf("empty site list: %v", err)
	}
	custom := CanteenVenue()
	custom.Kind = VenueKind(42)
	if err := SaveDeployment(&buf, DeploymentConfig{Sites: []Venue{custom}}); err == nil ||
		!strings.Contains(err.Error(), "site 0") {
		t.Errorf("unencodable site kind: %v", err)
	}
}

func TestLoadDeploymentErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "{", "decode deployment"},
		{"unknown plane", `{"knowledge":"telepathy","sites":[]}`, `unknown knowledge plane "telepathy"`},
		{"no sites", `{"knowledge":"isolated","sites":[]}`, "at least one site"},
		{"bad site", `{"knowledge":"shared","sites":[{"kind":"canteen","name":"x","radioRange":-3}]}`, "site 0"},
		{"bad roam", `{"knowledge":"shared","roamFraction":2,"sites":[{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}]}`, "roam fraction 2 outside [0,1]"},
		{"bad sync", `{"knowledge":"shared","syncEverySeconds":-4,"sites":[{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}]}`, "sync period"},
		{"bad transit", `{"knowledge":"shared","transit":{"speedMinMps":2,"speedMaxMps":1},"sites":[{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}]}`, "transit speed max"},
	}
	for _, tc := range cases {
		_, err := LoadDeployment(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Omitted knowledge defaults to isolated for hand-written plans.
	dcfg, err := LoadDeployment(strings.NewReader(
		`{"sites":[{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}]}`))
	if err != nil {
		t.Fatalf("minimal plan rejected: %v", err)
	}
	if dcfg.Knowledge != Isolated {
		t.Errorf("omitted knowledge plane decoded as %v", dcfg.Knowledge)
	}
}
