package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// venueFile is the JSON form of a Venue. Dwell models are encoded by kind
// so the format stays declarative and forward-compatible. It is the single
// codec behind SaveVenue/LoadVenue, the deployment and campaign formats
// (which embed venues inline), and the versioned plan envelope.
type venueFile struct {
	Name           string           `json:"name"`
	Kind           string           `json:"kind"`
	Position       geo.Point        `json:"position"`
	RadioRange     float64          `json:"radioRange"`
	StartHour      int              `json:"startHour"`
	ArrivalsPerMin []float64        `json:"arrivalsPerMinute"`
	MovingFraction float64          `json:"movingFraction"`
	Static         *staticDwellFile `json:"staticDwell,omitempty"`
	Moving         *movingDwellFile `json:"movingDwell,omitempty"`
	RushSlots      []int            `json:"rushSlots,omitempty"`
}

type staticDwellFile struct {
	MedianMinutes float64 `json:"medianMinutes"`
	Sigma         float64 `json:"sigma"`
	MaxMinutes    float64 `json:"maxMinutes"`
}

type movingDwellFile struct {
	PathLengthMetres float64 `json:"pathLengthMetres"`
	SpeedMinMPS      float64 `json:"speedMinMps"`
	SpeedMaxMPS      float64 `json:"speedMaxMps"`
}

var kindNames = map[string]VenueKind{
	"passage": Passage,
	"canteen": Canteen,
	"mall":    Mall,
	"station": Station,
}

// SaveVenue writes a venue as JSON. Only the built-in dwell-model types are
// encodable; custom DwellModel implementations need their own persistence.
//
// Deprecated: new code should persist venues inside a versioned plan
// envelope via SavePlan (plan.Save); this standalone format is kept for
// compatibility and emits byte-identical output.
func SaveVenue(w io.Writer, v Venue) error {
	vf, err := encodeVenue(v)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(vf); err != nil {
		return fmt.Errorf("scenario: encode venue: %w", err)
	}
	return nil
}

// EncodeVenueJSON renders a venue in its canonical (compact) file form —
// the payload the plan envelope and the campaign format embed.
func EncodeVenueJSON(v Venue) (json.RawMessage, error) {
	vf, err := encodeVenue(v)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(vf)
	if err != nil {
		return nil, fmt.Errorf("scenario: encode venue: %w", err)
	}
	return data, nil
}

// DecodeVenueJSON parses and validates a venue in the SaveVenue format.
// With strict set, unknown JSON fields are rejected (the plan-envelope
// contract); without it the decode is permissive, as LoadVenue has always
// been.
func DecodeVenueJSON(data []byte, strict bool) (Venue, error) {
	var vf venueFile
	dec := json.NewDecoder(bytes.NewReader(data))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&vf); err != nil {
		return Venue{}, fmt.Errorf("scenario: decode venue: %w", err)
	}
	return decodeVenue(vf)
}

// encodeVenue converts a venue to its file form (shared with the
// deployment format, which embeds sites inline).
func encodeVenue(v Venue) (venueFile, error) {
	vf := venueFile{
		Name:           v.Name,
		Position:       v.Position,
		RadioRange:     v.RadioRange,
		StartHour:      v.Profile.StartHour,
		ArrivalsPerMin: v.Profile.PerMinute,
		MovingFraction: v.MovingFraction,
		RushSlots:      v.RushSlots,
	}
	for name, kind := range kindNames {
		if kind == v.Kind {
			vf.Kind = name
		}
	}
	if vf.Kind == "" {
		return venueFile{}, fmt.Errorf("scenario: venue kind %v not encodable", v.Kind)
	}
	switch d := v.StaticDwell.(type) {
	case mobility.StaticDwell:
		vf.Static = &staticDwellFile{
			MedianMinutes: d.Median.Minutes(),
			Sigma:         d.Sigma,
			MaxMinutes:    d.Max.Minutes(),
		}
	case nil:
	default:
		return venueFile{}, fmt.Errorf("scenario: static dwell %T not encodable", v.StaticDwell)
	}
	switch d := v.MovingDwell.(type) {
	case mobility.CorridorDwell:
		vf.Moving = &movingDwellFile{
			PathLengthMetres: d.PathLength,
			SpeedMinMPS:      d.SpeedMin,
			SpeedMaxMPS:      d.SpeedMax,
		}
	case nil:
	default:
		return venueFile{}, fmt.Errorf("scenario: moving dwell %T not encodable", v.MovingDwell)
	}
	return vf, nil
}

// LoadVenue reads a venue previously written by SaveVenue (or hand-written
// in the same format) and validates it.
//
// Deprecated: new code should load plans through LoadPlan (plan.Load),
// which wraps the same codec in a versioned envelope with strict
// unknown-field validation. LoadVenue remains permissive for existing
// files.
func LoadVenue(r io.Reader) (Venue, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Venue{}, fmt.Errorf("scenario: decode venue: %w", err)
	}
	return DecodeVenueJSON(data, false)
}

// decodeVenue converts a venue's file form and validates it via
// Venue.Validate (shared with the deployment format).
func decodeVenue(vf venueFile) (Venue, error) {
	kind, ok := kindNames[vf.Kind]
	if !ok {
		return Venue{}, fmt.Errorf("scenario: unknown venue kind %q", vf.Kind)
	}
	v := Venue{
		Name:           vf.Name,
		Kind:           kind,
		Position:       vf.Position,
		RadioRange:     vf.RadioRange,
		Profile:        mobility.Profile{StartHour: vf.StartHour, PerMinute: vf.ArrivalsPerMin},
		MovingFraction: vf.MovingFraction,
		RushSlots:      vf.RushSlots,
	}
	if vf.Static != nil {
		v.StaticDwell = mobility.StaticDwell{
			Median: time.Duration(vf.Static.MedianMinutes * float64(time.Minute)),
			Sigma:  vf.Static.Sigma,
			Max:    time.Duration(vf.Static.MaxMinutes * float64(time.Minute)),
		}
	}
	if vf.Moving != nil {
		v.MovingDwell = mobility.CorridorDwell{
			PathLength: vf.Moving.PathLengthMetres,
			SpeedMin:   vf.Moving.SpeedMinMPS,
			SpeedMax:   vf.Moving.SpeedMaxMPS,
		}
	}
	if err := v.Validate(); err != nil {
		return Venue{}, fmt.Errorf("scenario: %w", err)
	}
	return v, nil
}
