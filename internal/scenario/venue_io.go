package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// venueFile is the JSON form of a Venue. Dwell models are encoded by kind
// so the format stays declarative and forward-compatible.
type venueFile struct {
	Name           string           `json:"name"`
	Kind           string           `json:"kind"`
	Position       geo.Point        `json:"position"`
	RadioRange     float64          `json:"radioRange"`
	StartHour      int              `json:"startHour"`
	ArrivalsPerMin []float64        `json:"arrivalsPerMinute"`
	MovingFraction float64          `json:"movingFraction"`
	Static         *staticDwellFile `json:"staticDwell,omitempty"`
	Moving         *movingDwellFile `json:"movingDwell,omitempty"`
	RushSlots      []int            `json:"rushSlots,omitempty"`
}

type staticDwellFile struct {
	MedianMinutes float64 `json:"medianMinutes"`
	Sigma         float64 `json:"sigma"`
	MaxMinutes    float64 `json:"maxMinutes"`
}

type movingDwellFile struct {
	PathLengthMetres float64 `json:"pathLengthMetres"`
	SpeedMinMPS      float64 `json:"speedMinMps"`
	SpeedMaxMPS      float64 `json:"speedMaxMps"`
}

var kindNames = map[string]VenueKind{
	"passage": Passage,
	"canteen": Canteen,
	"mall":    Mall,
	"station": Station,
}

// SaveVenue writes a venue as JSON. Only the built-in dwell-model types are
// encodable; custom DwellModel implementations need their own persistence.
func SaveVenue(w io.Writer, v Venue) error {
	vf, err := encodeVenue(v)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(vf); err != nil {
		return fmt.Errorf("scenario: encode venue: %w", err)
	}
	return nil
}

// encodeVenue converts a venue to its file form (shared with the
// deployment format, which embeds sites inline).
func encodeVenue(v Venue) (venueFile, error) {
	vf := venueFile{
		Name:           v.Name,
		Position:       v.Position,
		RadioRange:     v.RadioRange,
		StartHour:      v.Profile.StartHour,
		ArrivalsPerMin: v.Profile.PerMinute,
		MovingFraction: v.MovingFraction,
		RushSlots:      v.RushSlots,
	}
	for name, kind := range kindNames {
		if kind == v.Kind {
			vf.Kind = name
		}
	}
	if vf.Kind == "" {
		return venueFile{}, fmt.Errorf("scenario: venue kind %v not encodable", v.Kind)
	}
	switch d := v.StaticDwell.(type) {
	case mobility.StaticDwell:
		vf.Static = &staticDwellFile{
			MedianMinutes: d.Median.Minutes(),
			Sigma:         d.Sigma,
			MaxMinutes:    d.Max.Minutes(),
		}
	case nil:
	default:
		return venueFile{}, fmt.Errorf("scenario: static dwell %T not encodable", v.StaticDwell)
	}
	switch d := v.MovingDwell.(type) {
	case mobility.CorridorDwell:
		vf.Moving = &movingDwellFile{
			PathLengthMetres: d.PathLength,
			SpeedMinMPS:      d.SpeedMin,
			SpeedMaxMPS:      d.SpeedMax,
		}
	case nil:
	default:
		return venueFile{}, fmt.Errorf("scenario: moving dwell %T not encodable", v.MovingDwell)
	}
	return vf, nil
}

// LoadVenue reads a venue previously written by SaveVenue (or hand-written
// in the same format) and validates it.
func LoadVenue(r io.Reader) (Venue, error) {
	var vf venueFile
	if err := json.NewDecoder(r).Decode(&vf); err != nil {
		return Venue{}, fmt.Errorf("scenario: decode venue: %w", err)
	}
	return decodeVenue(vf)
}

// decodeVenue validates a venue's file form and converts it (shared with
// the deployment format).
func decodeVenue(vf venueFile) (Venue, error) {
	kind, ok := kindNames[vf.Kind]
	if !ok {
		return Venue{}, fmt.Errorf("scenario: unknown venue kind %q", vf.Kind)
	}
	if vf.Name == "" {
		return Venue{}, fmt.Errorf("scenario: venue needs a name")
	}
	if vf.RadioRange <= 0 {
		return Venue{}, fmt.Errorf("scenario: radio range %v must be positive", vf.RadioRange)
	}
	if vf.MovingFraction < 0 || vf.MovingFraction > 1 {
		return Venue{}, fmt.Errorf("scenario: moving fraction %v outside [0,1]", vf.MovingFraction)
	}
	v := Venue{
		Name:           vf.Name,
		Kind:           kind,
		Position:       vf.Position,
		RadioRange:     vf.RadioRange,
		Profile:        mobility.Profile{StartHour: vf.StartHour, PerMinute: vf.ArrivalsPerMin},
		MovingFraction: vf.MovingFraction,
		RushSlots:      vf.RushSlots,
	}
	if err := v.Profile.Validate(); err != nil {
		return Venue{}, fmt.Errorf("scenario: %w", err)
	}
	for _, s := range vf.RushSlots {
		if s < 0 || s >= v.Profile.Slots() {
			return Venue{}, fmt.Errorf("scenario: rush slot %d outside profile", s)
		}
	}
	if vf.Static != nil {
		v.StaticDwell = mobility.StaticDwell{
			Median: time.Duration(vf.Static.MedianMinutes * float64(time.Minute)),
			Sigma:  vf.Static.Sigma,
			Max:    time.Duration(vf.Static.MaxMinutes * float64(time.Minute)),
		}
	}
	if vf.Moving != nil {
		v.MovingDwell = mobility.CorridorDwell{
			PathLength: vf.Moving.PathLengthMetres,
			SpeedMin:   vf.Moving.SpeedMinMPS,
			SpeedMax:   vf.Moving.SpeedMaxMPS,
		}
	}
	if v.MovingFraction > 0 && v.MovingDwell == nil {
		return Venue{}, fmt.Errorf("scenario: moving fraction %v needs a moving dwell model", v.MovingFraction)
	}
	if v.MovingFraction < 1 && v.StaticDwell == nil {
		return Venue{}, fmt.Errorf("scenario: static share needs a static dwell model")
	}
	return v, nil
}
