package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
	"cityhunter/internal/stats"
)

// This file is the partitioned deployment path: the same env → knowledge →
// sites → populations → collection layering as RunDeploymentContext, but
// executed by a sim.Partitioned coordinator that runs each site partition
// on its own goroutine in lookahead-bounded windows.
//
// Partitioned mode is a second deterministic semantics, not a parallel
// re-execution of the classic one. The classic path funnels every site's
// population draws through ONE run RNG, so its event stream is inherently
// serial; the partitioned path gives every site its own RNG stream, radio
// shard, and MAC space, which is what makes its results identical at any
// partition count and any GOMAXPROCS — a one-partition run IS the serial
// reference the determinism tests compare against. The semantic deltas,
// and why each is forced, are catalogued in DESIGN §5.13:
//
//   - Per-site RNG streams (seed+500+1000·i) instead of one shared stream.
//   - Per-site radio shards: RF never crosses venues (sites must be
//     farther apart than the sum of their radio ranges — validated), so a
//     roaming phone is radio-silent during its inter-site walk instead of
//     scanning into empty air.
//   - Per-site client MAC spaces (0x06 block) instead of one allocator.
//   - Shared-plane knowledge is rejected: one database behind all sites
//     has zero lookahead, the antithesis of a conservative scheme.
//   - Span traces are rejected: obs.Trace is not safe for concurrent
//     track allocation.

// partDeployment is the partitioned counterpart of deploymentRun: the
// roaming coordinator plus every per-site handle the window closures need.
type partDeployment struct {
	coord  *sim.Partitioned
	envs   []*runEnv // one per site; engine/medium/rng/rt are site-local
	sites  []*site
	pops   []*population
	partOf []int // site index → partition index

	transit      mobility.TransitModel
	roamFraction float64
	// siteRoams counts completed transits by DESTINATION site, each
	// incremented only by the partition that owns it; the sum replaces the
	// classic single roams counter.
	siteRoams []int
}

// partitionCount resolves the configured partition count against the site
// count: AutoPartitions means one partition per site, and an explicit
// count is clamped to the number of sites (an empty partition would only
// add barrier latency).
func partitionCount(requested, nsites int) int {
	n := requested
	if n == AutoPartitions {
		n = nsites
	}
	if n > nsites {
		n = nsites
	}
	if n < 1 {
		n = 1
	}
	return n
}

// partitionRFGap returns the smallest pairwise RF gap between sites:
// distance minus both radio ranges. Partition-local radio needs it
// positive — a phone at site A must be provably unhearable at site B.
func partitionRFGap(sites []Venue) (gap float64, a, b int) {
	gap = math.Inf(1)
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			g := sites[i].Position.Dist(sites[j].Position) - sites[i].RadioRange - sites[j].RadioRange
			if g < gap {
				gap, a, b = g, i, j
			}
		}
	}
	return gap, a, b
}

// partitionLookahead derives the coordinator's lookahead from deployment
// geometry. Two mechanisms carry state between sites, and each needs its
// minimum transfer latency:
//
//   - Roaming transits: every inter-site walk covers at least the minimum
//     RF gap, and mobility.TransitModel floors leg duration at one second,
//     so every arrival is posted at least max(1s, gap/maxSpeed) ahead.
//   - Level-of-detail handoffs: a pedestrian demoted at one site's
//     promotion boundary walks at least the boundary gap before promoting
//     at another, so consecutive cross-site windows are separated by at
//     least boundaryGap/maxSpeed — which must bound the window size for
//     the demote and the re-promote to fall in different windows (the
//     barrier between them is what hands the snapshot across safely).
//
// A single-site deployment has no cross-partition traffic at all; the
// whole run is one window.
func partitionLookahead(dcfg DeploymentConfig, transit mobility.TransitModel, ff *FarFieldConfig, duration time.Duration) (time.Duration, error) {
	if len(dcfg.Sites) < 2 {
		return duration, nil
	}
	gap, a, b := partitionRFGap(dcfg.Sites)
	if gap <= 0 {
		return 0, fmt.Errorf("scenario: partitioned execution needs disjoint radio ranges: sites %q and %q are %.0fm apart with ranges %.0fm and %.0fm",
			dcfg.Sites[a].Name, dcfg.Sites[b].Name,
			dcfg.Sites[a].Position.Dist(dcfg.Sites[b].Position),
			dcfg.Sites[a].RadioRange, dcfg.Sites[b].RadioRange)
	}
	look := time.Duration(gap / transit.SpeedMax * float64(time.Second))
	if look < time.Second {
		look = time.Second // the transit model floors leg duration at 1s
	}
	if ff != nil {
		pgap := math.Inf(1)
		pa, pb := 0, 0
		for i := range dcfg.Sites {
			for j := i + 1; j < len(dcfg.Sites); j++ {
				g := dcfg.Sites[i].Position.Dist(dcfg.Sites[j].Position) - 2*ff.Radius
				if g < pgap {
					pgap, pa, pb = g, i, j
				}
			}
		}
		if pgap <= 0 {
			return 0, fmt.Errorf("scenario: partitioned execution needs disjoint promotion boundaries: sites %q and %q are %.0fm apart with promotion radius %.0fm",
				dcfg.Sites[pa].Name, dcfg.Sites[pb].Name,
				dcfg.Sites[pa].Position.Dist(dcfg.Sites[pb].Position), ff.Radius)
		}
		rt := ff.Route.Transit
		if rt == (mobility.TransitModel{}) {
			rt = mobility.DefaultTransit()
		}
		if h := time.Duration(pgap / rt.SpeedMax * float64(time.Second)); h < look {
			look = h
		}
	}
	return look, nil
}

// runPartitionedDeployment is the Partitions != 0 body of
// RunDeploymentContext; dcfg passed structural validation and cfg is
// normalized with its Venue cleared.
func runPartitionedDeployment(ctx context.Context, dcfg DeploymentConfig, cfg Config, slot int, duration time.Duration, transit mobility.TransitModel, syncEvery time.Duration, radioRange float64) (*DeploymentResult, error) {
	if dcfg.Knowledge == Shared {
		return nil, fmt.Errorf("scenario: partitioned execution cannot run a shared knowledge plane (one database behind all sites has zero lookahead); use isolated or periodic-sync")
	}
	if cfg.SpanTrace {
		return nil, fmt.Errorf("scenario: partitioned execution cannot record span traces (obs.Trace is single-threaded); disable SpanTrace or Partitions")
	}
	var ff *FarFieldConfig
	if dcfg.FarField != nil {
		f, err := dcfg.FarField.normalized(dcfg.Sites, radioRange, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ff = &f
	}
	look, err := partitionLookahead(dcfg, transit, ff, duration)
	if err != nil {
		return nil, err
	}
	nparts := partitionCount(dcfg.Partitions, len(dcfg.Sites))
	coord, err := sim.NewPartitioned(nparts, look)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	partOf := make([]int, len(dcfg.Sites))
	for i := range partOf {
		partOf[i] = i % nparts
	}

	// Observability: one shared registry (counters are atomic, and every
	// gauge series is either site-labelled or monotone), one coordinator
	// runtime, and one journal per site so each partition records events
	// race-free; the per-site journals merge by timestamp after the run.
	wantObs := cfg.Metrics || cfg.FlightRecorderCap > 0 || cfg.Publisher != nil
	var crt *obs.Runtime
	var reg *obs.Registry
	if wantObs {
		crt = &obs.Runtime{}
		if cfg.Metrics || cfg.Publisher != nil {
			reg = obs.NewRegistry()
			crt.Metrics = reg
		}
		if cfg.FlightRecorderCap > 0 {
			crt.Journal = obs.NewJournal(cfg.FlightRecorderCap)
			crt.Journal.Overflow = reg.Counter("obs_journal_overwritten_events")
		}
		for i := 0; i < coord.Parts(); i++ {
			coord.Part(i).Instrument(crt)
		}
	}

	model := cfg.PNL
	if model == nil {
		model, err = pnl.NewModel(cfg.City.DB, cfg.HeatMap, pnl.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("scenario: build pnl model: %w", err)
		}
	}

	// Per-site environments: the site's partition engine, its own radio
	// shard (same delivery radius as the classic shared medium), its own
	// RNG stream, its own journal. The PNL model is shared — its pool
	// cache is mutex-guarded and a pure function of the query position, so
	// concurrent use cannot perturb results.
	envs := make([]*runEnv, len(dcfg.Sites))
	for i := range dcfg.Sites {
		eng := coord.Part(partOf[i])
		var mediumOpts []sim.MediumOption
		if cfg.FrameLoss > 0 {
			mediumOpts = append(mediumOpts, sim.WithFrameLoss(cfg.FrameLoss, cfg.Seed+5+1000*int64(i)))
		}
		med := sim.NewMedium(eng, radioRange, mediumOpts...)
		var rt *obs.Runtime
		if wantObs {
			rt = &obs.Runtime{Metrics: reg}
			if cfg.FlightRecorderCap > 0 {
				rt.Journal = obs.NewJournal(cfg.FlightRecorderCap)
				rt.Journal.Overflow = reg.Counter("obs_journal_overwritten_events")
			}
			med.Instrument(rt)
		}
		envs[i] = &runEnv{
			cfg:        cfg,
			rng:        rand.New(rand.NewSource(cfg.Seed + 500 + 1000*int64(i))),
			engine:     eng,
			medium:     med,
			rt:         rt,
			model:      model,
			labelSites: true,
		}
	}

	// Knowledge layer: per-site strategy sets with the classic per-site
	// seeds. Engine gauges get a site label — N engines setting one shared
	// gauge from N partitions would race.
	sites := make([]*site, len(dcfg.Sites))
	for i, v := range dcfg.Sites {
		set, err := buildStrategy(cfg, []geo.Point{v.Position}, cfg.Seed+1+1000*int64(i))
		if err != nil {
			return nil, err
		}
		if set.chEngine != nil {
			set.chEngine.Instrument(envs[i].rt, envs[i].siteLabels(v.Name)...)
		}
		sites[i], err = deploySite(envs[i], v, deploymentSiteIdentity(i), set)
		if err != nil {
			return nil, err
		}
	}

	feed := startPartFeed(coord, crt, cfg, slot, sites, map[string]string{
		"knowledge":  dcfg.Knowledge.String(),
		"sites":      fmt.Sprintf("%d", len(sites)),
		"partitions": fmt.Sprintf("%d", nparts),
	})
	schedulePartSampling(envs, sites)
	if dcfg.Knowledge == PeriodicSync {
		schedulePartKnowledgeSync(coord, sites, syncEvery)
	}

	// Population layer: per-site MAC spaces and per-site arrival streams,
	// with dwell endings routed through the partitioned roaming hook.
	d := &partDeployment{
		coord: coord, envs: envs, sites: sites, partOf: partOf,
		transit: transit, roamFraction: dcfg.RoamFraction,
		siteRoams: make([]int, len(sites)),
	}
	attackers := attackerSet(sites)
	slotStart := time.Duration(slot) * time.Hour
	pops := make([]*population, len(dcfg.Sites))
	for i, v := range dcfg.Sites {
		arrivals, err := mobility.Arrivals(envs[i].rng, scaledProfile(v.Profile, cfg.ArrivalScale), slotStart, duration)
		if err != nil {
			return nil, fmt.Errorf("scenario: site %q: %w", v.Name, err)
		}
		pop := newPopulation(envs[i], v, sites[i].id.legitMAC, attackers, &macAllocator{space: siteMACSpace(i)})
		pop.siteIndex = i
		pop.endDwell = d.endDwell
		pops[i] = pop
		pop.spawnArrivals(arrivals, slotStart, v.Groups(slot), duration)
	}
	d.pops = pops

	var tiers *partTierManager
	if ff != nil {
		tiers, err = newPartTierManager(envs, *ff, sites)
		if err != nil {
			return nil, err
		}
		tiers.spawn(duration)
	}

	_, runErr := coord.RunContext(ctx, duration)

	// Collection layer — single-threaded again; every partition goroutine
	// was joined before RunContext returned.
	simulated := duration
	if runErr != nil {
		simulated = coord.Now()
	}
	engines := uniqueEngines(sites)
	roams := 0
	for _, r := range d.siteRoams {
		roams += r
	}
	dres := &DeploymentResult{
		Knowledge: dcfg.Knowledge,
		Roams:     roams,
		Duration:  simulated,
	}
	for i, st := range sites {
		res := assembleResult(envs[i], st, pops[i], slot, simulated, engines)
		dres.Sites = append(dres.Sites, res)
		dres.Outcomes = append(dres.Outcomes, res.Outcomes...)
	}
	dres.Tally = stats.NewTally(dres.Outcomes)
	if tiers != nil {
		dres.FarField = tiers.result(simulated, engines)
		if crt != nil && crt.Metrics != nil {
			f := dres.FarField
			crt.Metrics.Counter("scenario_farfield_pedestrians").Add(int64(f.Pedestrians))
			crt.Metrics.Counter("scenario_farfield_promotions").Add(int64(f.Promotions))
			crt.Metrics.Counter("scenario_farfield_demotions").Add(int64(f.Demotions))
			crt.Metrics.Gauge("scenario_farfield_peak_promoted").Set(float64(f.PeakPromoted))
		}
	}
	if crt != nil {
		if cfg.FlightRecorderCap > 0 {
			journals := []*obs.Journal{crt.Journal}
			for _, env := range envs {
				journals = append(journals, env.rt.Journal)
			}
			crt.Journal = mergeJournals(cfg.FlightRecorderCap, journals)
		}
		for i, res := range dres.Sites {
			emitRunTelemetry(crt, envs[i], pops[i], res)
		}
		for _, res := range dres.Sites {
			attachObservability(crt, res)
		}
		dres.Metrics = crt.Metrics.Snapshot()
		dres.Journal = crt.Journal
	}
	feed.finish(simulated, runErr)
	if runErr != nil {
		return dres, fmt.Errorf("scenario: deployment cancelled after %v of %v: %w",
			simulated, duration, runErr)
	}
	return dres, nil
}

// mergeJournals folds per-partition journals into one, ordered by virtual
// time with journal order (coordinator first, then site order) breaking
// ties — both independent of the partition count.
func mergeJournals(capacity int, journals []*obs.Journal) *obs.Journal {
	var all []obs.Event
	for _, j := range journals {
		if j != nil {
			all = append(all, j.Events()...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	merged := obs.NewJournal(capacity)
	for _, e := range all {
		merged.Record(e.At, e.Type, e.Actor, e.Detail)
	}
	return merged
}

// endDwell mirrors deploymentRun.endDwell with the current site's own RNG
// stream: it runs on the partition that owns the member's current site.
func (d *partDeployment) endDwell(m *member) {
	if m.c.State() == client.StateDeparted {
		return
	}
	rng := d.envs[m.site].rng
	if len(d.sites) < 2 || rng.Float64() >= d.roamFraction {
		m.c.Depart()
		return
	}
	target := rng.Intn(len(d.sites) - 1)
	if target >= m.site {
		target++
	}
	d.startTransit(m, target)
}

// startTransit hands the phone to the target site: the walk itself is
// radio-silent. The classic engine keeps the phone attached and scanning
// while it walks; under partition-local radio there is nothing for it to
// hear mid-walk (the RF-gap validation guarantees the leg is out of every
// site's range except for the entry/exit fringes), so the phone suspends
// at departure and resumes — same MAC, PNL, stats, sequence counter,
// unmasked twins — when the transit message arrives at the target
// partition, at least one lookahead later by construction.
func (d *partDeployment) startTransit(m *member, target int) {
	src := m.site
	env := d.envs[src]
	dest := d.sites[target].venue
	entry := mobility.StaticPos(env.rng, dest.Position, dest.RadioRange*0.9)
	path := d.transit.Path(env.rng, m.c.Pos(), entry)
	snap, err := m.c.Suspend()
	if err != nil {
		return
	}
	m.leg++
	m.legStart = env.engine.Now()
	arriveAt := m.legStart + path.Duration
	d.coord.Post(d.partOf[src], src, arriveAt, d.partOf[target], func() {
		d.arrive(m, target, entry, snap)
	})
}

// arrive resumes the phone on the target site's partition and starts a
// fresh dwell there, drawn from the target's own streams.
func (d *partDeployment) arrive(m *member, target int, entry geo.Point, snap client.Snapshot) {
	pop := d.pops[target]
	env := d.envs[target]
	c, err := client.Resume(env.engine, env.medium, pop.rng, snap)
	if err != nil {
		return
	}
	c.SetPos(entry)
	m.c = c
	d.siteRoams[target]++
	m.roams++
	m.site = target
	venue := pop.venue
	now := env.engine.Now()
	moving := pop.rng.Float64() < venue.MovingFraction
	var dwell time.Duration
	if moving {
		dwell = venue.MovingDwell.SampleDwell(pop.rng)
	} else {
		dwell = venue.StaticDwell.SampleDwell(pop.rng)
	}
	m.leg++
	m.legStart = now
	m.departAt = now + dwell
	if moving {
		path := mobility.CorridorPath(pop.rng, venue.Position, venue.RadioRange, dwell)
		m.c.SetPos(path.At(0))
		pop.scheduleMove(m, path)
	} else {
		m.c.SetPos(mobility.StaticPos(pop.rng, venue.Position, venue.RadioRange*0.9))
	}
	env.engine.At(m.departAt, func() { pop.finishDwell(m) })
}

// schedulePartSampling arms the periodic engine-state sampler per site, on
// the site's own partition. The partitioned path never shares a strategy
// set between sites (the Shared plane is rejected), so per-site sampling
// equals the classic unique-engine sweep.
func schedulePartSampling(envs []*runEnv, sites []*site) {
	for i, st := range sites {
		env := envs[i]
		if env.cfg.SampleEvery <= 0 {
			return
		}
		eng, mana := st.set.chEngine, st.set.mana
		if eng == nil && mana == nil {
			continue
		}
		var sample func()
		sample = func() {
			if eng != nil {
				eng.SampleState(env.engine.Now())
			}
			if mana != nil {
				mana.SampleSize(env.engine.Now())
			}
			env.engine.Schedule(env.cfg.SampleEvery, sample)
		}
		env.engine.Schedule(0, sample)
	}
}

// schedulePartKnowledgeSync arms the PeriodicSync exchange as a global
// event: it runs at an exact window barrier, when every partition clock
// reads the sync time and none is running, so absorbing hits into the
// other sites' engines needs no locks and lands in deterministic site
// order.
func schedulePartKnowledgeSync(coord *sim.Partitioned, sites []*site, every time.Duration) {
	engines := uniqueEngines(sites)
	if len(engines) < 2 {
		return
	}
	consumed := make([]int, len(engines))
	coord.GlobalEvery(every, every, func() {
		now := coord.Now()
		for i, src := range engines {
			hits := src.Hits()
			for _, h := range hits[consumed[i]:] {
				for j, dst := range engines {
					if j != i {
						dst.AbsorbHit(now, h.SSID)
					}
				}
			}
			consumed[i] = len(hits)
		}
	})
}

// partFeed is the partitioned runFeed: the snapshot tick is a coordinator
// global event, so the registry is only read at barriers.
type partFeed struct {
	rp  obs.RunPublisher
	crt *obs.Runtime
}

func startPartFeed(coord *sim.Partitioned, crt *obs.Runtime, cfg Config, slot int, sites []*site, extra map[string]string) *partFeed {
	if cfg.Publisher == nil {
		return nil
	}
	labels := map[string]string{}
	for k, v := range cfg.RunLabels {
		labels[k] = v
	}
	labels["attack"] = cfg.Attack.String()
	labels["seed"] = fmt.Sprintf("%d", cfg.Seed)
	for k, v := range extra {
		labels[k] = v
	}
	label := cfg.RunLabel
	if label == "" {
		label = fmt.Sprintf("%d sites/%s/slot%d", len(sites), cfg.Attack, slot)
	}
	rp := cfg.Publisher.StartRun(obs.RunInfo{Kind: "deployment", Label: label, Labels: labels})
	crt.Publish = rp
	for _, st := range sites {
		crt.Event(0, obs.EventSiteDeploy, st.venue.Name,
			fmt.Sprintf("attacker %s at (%.0f,%.0f)", st.id.attackerMAC, st.venue.Position.X, st.venue.Position.Y))
	}
	every := cfg.PublishEvery
	if every <= 0 {
		every = DefaultPublishEvery
	}
	coord.GlobalEvery(0, every, func() {
		rp.PublishSnapshot(coord.Now(), crt.Metrics.Snapshot())
	})
	return &partFeed{rp: rp, crt: crt}
}

func (f *partFeed) finish(simulated time.Duration, runErr error) {
	if f == nil {
		return
	}
	f.rp.PublishSnapshot(simulated, f.crt.Metrics.Snapshot())
	f.rp.FinishRun(simulated, runErr)
}
