package scenario

import (
	"math/rand"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
	"cityhunter/internal/stats"
)

// member is one phone in the crowd with its schedule.
type member struct {
	c        *client.Client
	arrived  time.Duration
	departAt time.Duration
	direct   bool

	// site is the index of the deployment site the phone currently dwells
	// at (always 0 for a single-venue run).
	site int
	// legStart anchors the current movement path; equal to arrived until
	// the phone roams to another site.
	legStart time.Duration
	// leg counts movement legs (dwell, transit, dwell, ...). Position
	// tickers capture it and stop when a newer leg supersedes them.
	leg int
	// roams counts completed inter-site transits.
	roams int
}

// macAllocator hands out unique, deterministic client MACs (locally
// administered). Classic deployments share one allocator across their
// per-site populations so phones stay unique city-wide; partitioned
// deployments give each site its own allocator in a per-site space
// (allocation order inside one shared space would depend on how arrivals
// interleave across partitions).
type macAllocator struct {
	next uint32
	// space overrides the leading two MAC bytes; the zero value selects
	// the classic locally administered 0x02,0x00 block.
	space [2]byte
}

func (a *macAllocator) mac() ieee80211.MAC {
	a.next++
	n := a.next
	sp := a.space
	if sp == ([2]byte{}) {
		sp = [2]byte{0x02, 0x00}
	}
	return ieee80211.MAC{sp[0], sp[1], byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// siteMACSpace is the per-site client MAC space partitioned deployments
// use: locally administered 0x06 block with the site index in byte two —
// disjoint from the classic 0x02,0x00 allocator and the far-field
// 0x02,0x10 space for any site count a deployment allows.
func siteMACSpace(siteIndex int) [2]byte {
	return [2]byte{0x06, byte(siteIndex)}
}

// population creates phones on arrival at one venue, moves the walkers,
// and ends everyone's dwell on schedule. What happens when a dwell ends is
// pluggable: a single-venue run departs the phone; a deployment may hand
// it a transit leg to another site.
type population struct {
	engine *sim.Engine
	medium *sim.Medium
	rng    *rand.Rand
	model  *pnl.Model
	cfg    Config
	obs    *obs.Runtime

	// venue is where this population spawns (Config.Venue for a
	// single-venue run, one of the deployment's sites otherwise).
	venue Venue
	// siteIndex is the venue's position in the deployment's site list.
	siteIndex int
	// legitMAC is the venue's legitimate AP for pre-connected phones.
	legitMAC ieee80211.MAC
	// attackers is the membership test for "associated to a rogue AP".
	attackers map[ieee80211.MAC]bool
	// endDwell, when non-nil, is invoked instead of Depart when a
	// member's dwell expires — the deployment roaming hook.
	endDwell func(*member)

	members []*member
	macs    *macAllocator
}

func newPopulation(env *runEnv, venue Venue, legitMAC ieee80211.MAC, attackers map[ieee80211.MAC]bool, macs *macAllocator) *population {
	return &population{
		engine: env.engine, medium: env.medium, rng: env.rng,
		model: env.model, cfg: env.cfg, obs: env.rt,
		venue: venue, legitMAC: legitMAC, attackers: attackers, macs: macs,
	}
}

// spawnArrivals schedules the slot's arrival stream as social groups.
// Group-size draws happen here, at scheduling time, in arrival order.
func (p *population) spawnArrivals(arrivals []time.Duration, slotStart time.Duration, groups mobility.GroupModel, horizon time.Duration) {
	for i := 0; i < len(arrivals); {
		at := arrivals[i] - slotStart
		size := groups.SampleSize(p.rng)
		if size > len(arrivals)-i {
			size = len(arrivals) - i
		}
		p.spawnGroup(at, size, horizon)
		i += size
	}
}

// spawnGroup schedules a social group of the given size to arrive at the
// offset. Group members walk together: same movement type, correlated
// dwell, shared PNL entries.
func (p *population) spawnGroup(at time.Duration, size int, horizon time.Duration) {
	p.engine.At(at, func() {
		venue := p.venue
		moving := p.rng.Float64() < venue.MovingFraction
		var dwell time.Duration
		if moving {
			dwell = venue.MovingDwell.SampleDwell(p.rng)
		} else {
			dwell = venue.StaticDwell.SampleDwell(p.rng)
		}

		var leaderPNL pnl.List
		var path mobility.Path
		if moving {
			path = mobility.CorridorPath(p.rng, venue.Position, venue.RadioRange, dwell)
		}
		for i := 0; i < size; i++ {
			// Companions stay within ±10 % of the leader's dwell.
			d := dwell
			if i > 0 {
				d = time.Duration(float64(dwell) * (0.9 + 0.2*p.rng.Float64()))
			}
			var list pnl.List
			if i == 0 {
				list = p.model.NewList(p.rng, venue.Position)
				leaderPNL = list
			} else {
				list = p.model.NewCompanionList(p.rng, venue.Position, leaderPNL)
			}
			p.spawnMember(list, moving, path, d)
		}
		_ = horizon
	})
}

func (p *population) spawnMember(list pnl.List, moving bool, path mobility.Path, dwell time.Duration) {
	now := p.engine.Now()
	direct := p.rng.Float64() < p.cfg.DirectProberFraction
	if direct {
		// Unsafe phones skew towards more remembered open networks.
		list = p.model.AugmentUnsafe(p.rng, list)
	}
	cfg := client.Config{
		MAC:           p.macs.mac(),
		PNL:           list,
		DirectProber:  direct,
		ScanInterval:  time.Duration(float64(p.cfg.ScanInterval) * (0.7 + 0.6*p.rng.Float64())),
		CanaryProbing: p.cfg.CanaryFraction > 0 && p.rng.Float64() < p.cfg.CanaryFraction,
		RandomizeMAC:  p.cfg.RandomizeMACFraction > 0 && p.rng.Float64() < p.cfg.RandomizeMACFraction,
		Obs:           p.obs,
	}
	p.cfg.applyRandomization(&cfg)
	if p.cfg.PreconnectedFraction > 0 && p.rng.Float64() < p.cfg.PreconnectedFraction {
		cfg.PreconnectedBSSID = p.legitMAC
	}
	c, err := client.New(p.engine, p.medium, p.rng, cfg)
	if err != nil {
		// Only reachable through programming errors (zero MAC); drop the
		// member rather than corrupt the run.
		return
	}
	if moving {
		c.SetPos(path.At(0))
	} else {
		c.SetPos(mobility.StaticPos(p.rng, p.venue.Position, p.venue.RadioRange*0.9))
	}
	if err := c.Start(); err != nil {
		return
	}

	m := &member{c: c, arrived: now, departAt: now + dwell, direct: cfg.DirectProber,
		site: p.siteIndex, legStart: now}
	p.members = append(p.members, m)

	if moving {
		p.scheduleMove(m, path)
	}
	p.engine.At(m.departAt, func() { p.finishDwell(m) })
}

// finishDwell ends a member's stay at its current site: a deployment with
// roaming may hand the phone a transit leg; everyone else leaves.
func (p *population) finishDwell(m *member) {
	if p.endDwell != nil {
		p.endDwell(m)
		return
	}
	m.c.Depart()
}

// scheduleMove updates a walker's position every 2 s along its path. The
// ticker dies when the phone departs or starts a newer movement leg. It
// captures the client pointer and consults its state before any member
// field: in a partitioned deployment a suspended phone's old client is
// Departed forever while ANOTHER partition rewrites the member for the
// next dwell, so the state check is the only read a stale ticker may make.
func (p *population) scheduleMove(m *member, path mobility.Path) {
	const step = 2 * time.Second
	leg := m.leg
	c := m.c
	legStart := m.legStart
	var tick func()
	tick = func() {
		if c.State() == client.StateDeparted || m.leg != leg {
			return
		}
		c.SetPos(path.At(p.engine.Now() - legStart))
		p.engine.Schedule(step, tick)
	}
	p.engine.Schedule(step, tick)
}

// outcomes summarises every member after the run. engines lists the
// distinct City-Hunter engines whose reply counts should be credited (a
// roaming phone may have been served by several isolated sites).
func (p *population) outcomes(now time.Duration, engines []*core.Engine) []stats.ClientOutcome {
	out := make([]stats.ClientOutcome, 0, len(p.members))
	for _, m := range p.members {
		st := m.c.Stats
		departed := m.departAt
		if departed > now {
			departed = now
		}
		o := stats.ClientOutcome{
			Arrived:      m.arrived,
			Departed:     departed,
			DirectProber: m.direct,
			Probed:       st.BroadcastProbes+st.DirectProbes > 0,
			Connected:    st.Connected && p.attackers[st.ConnectedTo],
			ConnectedAt:  st.ConnectedAt,
			MACsUsed:     len(m.c.UsedMACs()),
		}
		for _, eng := range engines {
			o.SSIDsSent += eng.SentCountAcross(m.c.UsedMACs())
		}
		out = append(out, o)
	}
	return out
}
