package scenario

import (
	"math/rand"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
	"cityhunter/internal/stats"
)

// member is one phone in the crowd with its schedule.
type member struct {
	c        *client.Client
	arrived  time.Duration
	departAt time.Duration
	direct   bool
}

// population creates phones on arrival, moves the walkers, and departs
// everyone on schedule.
type population struct {
	engine *sim.Engine
	medium *sim.Medium
	rng    *rand.Rand
	model  *pnl.Model
	cfg    Config
	obs    *obs.Runtime

	members []*member
	nextMAC uint32
}

func newPopulation(engine *sim.Engine, medium *sim.Medium, rng *rand.Rand, model *pnl.Model, cfg Config, rt *obs.Runtime) *population {
	return &population{engine: engine, medium: medium, rng: rng, model: model, cfg: cfg, obs: rt}
}

// mac hands out unique, deterministic client MACs (locally administered).
func (p *population) mac() ieee80211.MAC {
	p.nextMAC++
	n := p.nextMAC
	return ieee80211.MAC{0x02, 0x00, byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// spawnGroup schedules a social group of the given size to arrive at the
// offset. Group members walk together: same movement type, correlated
// dwell, shared PNL entries.
func (p *population) spawnGroup(at time.Duration, size int, horizon time.Duration) {
	p.engine.At(at, func() {
		venue := p.cfg.Venue
		moving := p.rng.Float64() < venue.MovingFraction
		var dwell time.Duration
		if moving {
			dwell = venue.MovingDwell.SampleDwell(p.rng)
		} else {
			dwell = venue.StaticDwell.SampleDwell(p.rng)
		}

		var leaderPNL pnl.List
		var path mobility.Path
		if moving {
			path = mobility.CorridorPath(p.rng, venue.Position, venue.RadioRange, dwell)
		}
		for i := 0; i < size; i++ {
			// Companions stay within ±10 % of the leader's dwell.
			d := dwell
			if i > 0 {
				d = time.Duration(float64(dwell) * (0.9 + 0.2*p.rng.Float64()))
			}
			var list pnl.List
			if i == 0 {
				list = p.model.NewList(p.rng, venue.Position)
				leaderPNL = list
			} else {
				list = p.model.NewCompanionList(p.rng, venue.Position, leaderPNL)
			}
			p.spawnMember(list, moving, path, d)
		}
		_ = horizon
	})
}

func (p *population) spawnMember(list pnl.List, moving bool, path mobility.Path, dwell time.Duration) {
	now := p.engine.Now()
	direct := p.rng.Float64() < p.cfg.DirectProberFraction
	if direct {
		// Unsafe phones skew towards more remembered open networks.
		list = p.model.AugmentUnsafe(p.rng, list)
	}
	cfg := client.Config{
		MAC:           p.mac(),
		PNL:           list,
		DirectProber:  direct,
		ScanInterval:  time.Duration(float64(p.cfg.ScanInterval) * (0.7 + 0.6*p.rng.Float64())),
		CanaryProbing: p.cfg.CanaryFraction > 0 && p.rng.Float64() < p.cfg.CanaryFraction,
		RandomizeMAC:  p.cfg.RandomizeMACFraction > 0 && p.rng.Float64() < p.cfg.RandomizeMACFraction,
		Obs:           p.obs,
	}
	if p.cfg.PreconnectedFraction > 0 && p.rng.Float64() < p.cfg.PreconnectedFraction {
		cfg.PreconnectedBSSID = legitAPMAC
	}
	c, err := client.New(p.engine, p.medium, p.rng, cfg)
	if err != nil {
		// Only reachable through programming errors (zero MAC); drop the
		// member rather than corrupt the run.
		return
	}
	if moving {
		c.SetPos(path.At(0))
	} else {
		c.SetPos(mobility.StaticPos(p.rng, p.cfg.Venue.Position, p.cfg.Venue.RadioRange*0.9))
	}
	if err := c.Start(); err != nil {
		return
	}

	m := &member{c: c, arrived: now, departAt: now + dwell, direct: cfg.DirectProber}
	p.members = append(p.members, m)

	if moving {
		p.scheduleMove(m, path)
	}
	p.engine.At(m.departAt, func() { c.Depart() })
}

// scheduleMove updates a walker's position every 2 s along its path.
func (p *population) scheduleMove(m *member, path mobility.Path) {
	const step = 2 * time.Second
	var tick func()
	tick = func() {
		if m.c.State() == client.StateDeparted {
			return
		}
		m.c.SetPos(path.At(p.engine.Now() - m.arrived))
		p.engine.Schedule(step, tick)
	}
	p.engine.Schedule(step, tick)
}

// outcomes summarises every member after the run.
func (p *population) outcomes(now time.Duration, eng *core.Engine) []stats.ClientOutcome {
	out := make([]stats.ClientOutcome, 0, len(p.members))
	for _, m := range p.members {
		st := m.c.Stats
		departed := m.departAt
		if departed > now {
			departed = now
		}
		o := stats.ClientOutcome{
			Arrived:      m.arrived,
			Departed:     departed,
			DirectProber: m.direct,
			Probed:       st.BroadcastProbes+st.DirectProbes > 0,
			Connected:    st.Connected && st.ConnectedTo == attackerMAC,
			ConnectedAt:  st.ConnectedAt,
		}
		if eng != nil {
			o.SSIDsSent = eng.SentCount(m.c.Addr())
		}
		out = append(out, o)
	}
	return out
}
