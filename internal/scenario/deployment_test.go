package scenario

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
	"cityhunter/internal/stats"
)

func deployConfig(t *testing.T, kind AttackKind, seed int64) DeploymentConfig {
	t.Helper()
	base := baseConfig(t, Venue{}, kind, seed)
	base.ArrivalScale = 0.5
	// The real canteen and passage sit ~2.2 km apart — a 26-minute walk.
	// Tests pull the passage next door so transits complete within short
	// runs; the PNL geography stays the canteen's.
	canteen := CanteenVenue()
	passage := PassageVenue()
	passage.Position = canteen.Position.Add(geo.Pt(400, 0))
	return DeploymentConfig{
		Base:  base,
		Sites: []Venue{canteen, passage},
	}
}

func TestDeploymentValidation(t *testing.T) {
	good := deployConfig(t, CityHunter, 1)
	if _, err := RunDeployment(good, 0, time.Minute); err != nil {
		t.Fatalf("valid deployment rejected: %v", err)
	}

	bad := good
	bad.Base.City = nil
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("nil city accepted")
	}
	bad = good
	bad.Sites = nil
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("empty site list accepted")
	}
	bad = good
	unnamed := CanteenVenue()
	unnamed.Name = ""
	bad.Sites = []Venue{unnamed}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("unnamed site accepted")
	}
	bad = good
	ranged := CanteenVenue()
	ranged.RadioRange = 0
	bad.Sites = []Venue{ranged}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("zero radio range accepted")
	}
	if _, err := RunDeployment(good, 99, time.Minute); err == nil {
		t.Error("slot beyond profile accepted")
	}
	bad = good
	bad.RoamFraction = 1.5
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("roam fraction above 1 accepted")
	}
	bad = good
	bad.Knowledge = KnowledgePlane(9)
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("unknown knowledge plane accepted")
	}
	bad = good
	bad.Transit = mobility.TransitModel{SpeedMin: 2, SpeedMax: 1}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("invalid transit model accepted")
	}
	if _, err := RunDeployment(good, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestSingleSiteDeploymentMatchesRun is the refactor's equivalence proof:
// a one-site deployment without roaming replays the classic single-venue
// runner draw for draw, so their results must be identical.
func TestSingleSiteDeploymentMatchesRun(t *testing.T) {
	for _, kind := range []AttackKind{KARMA, MANA, CityHunter} {
		cfg := baseConfig(t, CanteenVenue(), kind, 11)
		cfg.ArrivalScale = 0.5
		cfg.PreconnectedFraction = 0.2
		cfg.EnableDeauth = true
		single, err := Run(cfg, 0, 10*time.Minute)
		if err != nil {
			t.Fatalf("%v: run: %v", kind, err)
		}
		dep, err := RunDeployment(DeploymentConfig{Base: cfg, Sites: []Venue{CanteenVenue()}}, 0, 10*time.Minute)
		if err != nil {
			t.Fatalf("%v: deployment: %v", kind, err)
		}
		if len(dep.Sites) != 1 {
			t.Fatalf("%v: %d site results", kind, len(dep.Sites))
		}
		site := dep.Sites[0]
		if !reflect.DeepEqual(single.Outcomes, site.Outcomes) {
			t.Errorf("%v: outcomes diverge between Run and 1-site deployment", kind)
		}
		if single.Tally != site.Tally || single.Tally != dep.Tally {
			t.Errorf("%v: tallies diverge: run %+v site %+v pooled %+v",
				kind, single.Tally, site.Tally, dep.Tally)
		}
		if single.Report != site.Report {
			t.Errorf("%v: attacker reports diverge: %+v vs %+v", kind, single.Report, site.Report)
		}
		if !reflect.DeepEqual(single.Victims, site.Victims) {
			t.Errorf("%v: victim lists diverge", kind)
		}
		if dep.Roams != 0 {
			t.Errorf("%v: single-site deployment roamed %d times", kind, dep.Roams)
		}
	}
}

// TestDeploymentDeterminism runs the same roaming deployment sequentially
// and concurrently: every execution must agree outcome for outcome.
func TestDeploymentDeterminism(t *testing.T) {
	run := func() *DeploymentResult {
		cfg := deployConfig(t, CityHunter, 7)
		cfg.RoamFraction = 0.5
		cfg.Knowledge = Shared
		res, err := RunDeployment(cfg, 0, 15*time.Minute)
		if err != nil {
			t.Errorf("deployment: %v", err)
			return nil
		}
		return res
	}
	ref := run()
	if ref == nil {
		t.FailNow()
	}
	const workers = 4
	results := make([]*DeploymentResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.FailNow()
		}
		if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) {
			t.Errorf("worker %d: pooled outcomes diverge", i)
		}
		if ref.Tally != res.Tally || ref.Roams != res.Roams {
			t.Errorf("worker %d: tally/roams diverge: %+v/%d vs %+v/%d",
				i, ref.Tally, ref.Roams, res.Tally, res.Roams)
		}
		for s := range ref.Sites {
			if ref.Sites[s].Tally != res.Sites[s].Tally {
				t.Errorf("worker %d site %d: tallies diverge", i, s)
			}
		}
	}
}

// TestDeploymentRoaming checks the transit plumbing: with RoamFraction 1
// phones keep hopping between the two sites until the run ends.
func TestDeploymentRoaming(t *testing.T) {
	cfg := deployConfig(t, CityHunter, 3)
	cfg.RoamFraction = 1
	res, err := RunDeployment(cfg, 0, 20*time.Minute)
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	if res.Roams == 0 {
		t.Fatal("no phone ever roamed at RoamFraction 1")
	}
	// The tally counts probed phones only, so it can trail the outcome
	// list — but pooled and per-site accounting must agree (a roamer is
	// counted once, under its first site).
	if res.Tally.Total > len(res.Outcomes) {
		t.Fatalf("pooled tally counts %d phones, only %d outcomes", res.Tally.Total, len(res.Outcomes))
	}
	sum, outcomes := 0, 0
	for _, s := range res.Sites {
		sum += s.Tally.Total
		outcomes += len(s.Outcomes)
	}
	if sum != res.Tally.Total || outcomes != len(res.Outcomes) {
		t.Fatalf("per-site totals %d/%d != pooled %d/%d (roamers double-counted?)",
			sum, outcomes, res.Tally.Total, len(res.Outcomes))
	}
}

// TestKnowledgePlanesDegradeForDatabaselessAttacks: KARMA has nothing to
// share, so every plane must run (and agree with Isolated).
func TestKnowledgePlanesDegradeForDatabaselessAttacks(t *testing.T) {
	var ref *DeploymentResult
	for _, plane := range []KnowledgePlane{Isolated, PeriodicSync, Shared} {
		cfg := deployConfig(t, KARMA, 5)
		cfg.RoamFraction = 0.5
		cfg.Knowledge = plane
		res, err := RunDeployment(cfg, 0, 10*time.Minute)
		if err != nil {
			t.Fatalf("%v: %v", plane, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) {
			t.Errorf("%v: KARMA outcomes differ from isolated", plane)
		}
	}
}

// TestSharedKnowledgeBeatsIsolated is the deployment plane's reason to
// exist (and this PR's acceptance criterion): across the same seeds, two
// sites sharing one City-Hunter database capture strictly more
// broadcast-probing roamers than two isolated copies — the shared
// rotation state means a phone that exhausted site A's top replies gets
// the next untried batch at site B instead of the same head again.
func TestSharedKnowledgeBeatsIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed 30-minute deployments")
	}
	pooled := func(plane KnowledgePlane, seed int64) stats.Tally {
		cfg := deployConfig(t, CityHunter, seed)
		cfg.RoamFraction = 0.5
		cfg.Knowledge = plane
		res, err := RunDeployment(cfg, 0, 30*time.Minute)
		if err != nil {
			t.Fatalf("%v seed %d: %v", plane, seed, err)
		}
		return res.Tally
	}
	add := func(a, b stats.Tally) stats.Tally {
		a.Broadcast += b.Broadcast
		a.ConnectedBroadcast += b.ConnectedBroadcast
		return a
	}
	seeds := []int64{1, 2, 3}
	var isolated, shared stats.Tally
	for _, seed := range seeds {
		isolated = add(isolated, pooled(Isolated, seed))
		shared = add(shared, pooled(Shared, seed))
	}
	t.Logf("pooled broadcast captures over seeds %v: isolated=%d/%d shared=%d/%d",
		seeds, isolated.ConnectedBroadcast, isolated.Broadcast,
		shared.ConnectedBroadcast, shared.Broadcast)
	if shared.ConnectedBroadcast <= isolated.ConnectedBroadcast {
		t.Fatalf("shared knowledge plane captured %d broadcast probers, isolated %d — sharing must win",
			shared.ConnectedBroadcast, isolated.ConnectedBroadcast)
	}
	if shared.BroadcastHitRate() <= isolated.BroadcastHitRate() {
		t.Fatalf("shared pooled h_b %.4f not above isolated %.4f",
			shared.BroadcastHitRate(), isolated.BroadcastHitRate())
	}
}
