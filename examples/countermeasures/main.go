// Countermeasures: the paper's conclusion notes that existing evil-twin
// detection still works against City-Hunter. This example deploys two such
// defences in the simulation:
//
//   - canary probing on the phones: each scan also asks for a nonexistent
//     SSID, and any "AP" that claims to be that network is an evil twin —
//     the phone ignores it from then on;
//   - a passive sentinel watching the air: one BSSID advertising dozens of
//     distinct SSIDs is the unmistakable signature of a KARMA-family
//     attacker.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	// Undefended baseline, with the sentinel listening passively.
	base, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 20*time.Minute, cityhunter.WithSentinel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undefended crowd:  h_b = %.1f%%\n", 100*base.Tally.BroadcastHitRate())

	if findings := base.Sentinel.Findings(); len(findings) > 0 {
		f := findings[0]
		fmt.Printf("sentinel: flagged %v after %v — one BSSID advertising %d+ SSIDs\n",
			f.BSSID, f.FlaggedAt.Truncate(time.Millisecond), f.SSIDCount)
	} else {
		fmt.Println("sentinel: nothing flagged")
	}

	// Now give every phone the canary detector.
	defended, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 20*time.Minute, cityhunter.WithCanaryClients(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall phones canary-probing:  h_b = %.1f%%  (%d unmaskings)\n",
		100*defended.Tally.BroadcastHitRate(), defended.CanaryDetections)
	// The arms race: a cautious attacker answers directed probes only for
	// SSIDs already in its database, so canaries draw no response.
	cautious, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 20*time.Minute,
		cityhunter.WithCanaryClients(1.0), cityhunter.WithCautiousMirror())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncautious attacker vs the same canary crowd:  h_b = %.1f%%  (%d unmaskings)\n",
		100*cautious.Tally.BroadcastHitRate(), cautious.CanaryDetections)
	fmt.Println("\nThe canary only catches attackers that mimic unknown SSIDs; a cautious")
	fmt.Println("mirror sidesteps it (losing first-sighting direct hits), which is why the")
	fmt.Println("passive sentinel — watching SSID diversity per BSSID — remains the robust")
	fmt.Println("detector, exactly as the paper's conclusion suggests.")
}
