// Custom venue: deployments are plain JSON documents, so new attack sites
// can be described without touching Go code. This example defines a night
// market — a 6pm-to-10pm venue with a mixed sitting/strolling crowd —
// loads it through the public API, and hunts there.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"cityhunter"
)

// nightMarket is the JSON venue document (see scenario.SaveVenue for the
// schema; cityhunter-sim accepts the same files via -venue-file).
const nightMarket = `{
	"name": "night market",
	"kind": "mall",
	"position": {"x": 5400, "y": 5200},
	"radioRange": 45,
	"startHour": 18,
	"arrivalsPerMinute": [14, 20, 22, 16],
	"movingFraction": 0.5,
	"staticDwell": {"medianMinutes": 9, "sigma": 0.45, "maxMinutes": 45},
	"movingDwell": {"pathLengthMetres": 80, "speedMinMps": 0.7, "speedMaxMps": 1.3},
	"rushSlots": [1, 2]
}`

func main() {
	venue, err := cityhunter.LoadVenue(strings.NewReader(nightMarket))
	if err != nil {
		log.Fatal(err)
	}
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %8s %8s %8s\n", "slot", "clients", "h", "h_b")
	for slot := 0; slot < venue.Profile.Slots(); slot++ {
		res, err := world.Run(venue, cityhunter.CityHunter, slot, 20*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %7.1f%% %7.1f%%\n",
			res.SlotLabel, res.Tally.Total,
			100*res.Tally.HitRate(), 100*res.Tally.BroadcastHitRate())
	}
	fmt.Println("\nThe venue came from a JSON document; cityhunter-sim -venue-file runs")
	fmt.Println("the same format from the command line.")
}
