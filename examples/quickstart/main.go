// Quickstart: generate a synthetic city, deploy City-Hunter in the canteen
// over lunch for 30 minutes, and print the paper's two headline metrics —
// the hit rate h and the broadcast hit rate h_b.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	// A World bundles the city, its crowd heat map, the phone-population
	// model and the attacker's WiGLE snapshot. Same seed ⇒ same results.
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d access points (%d in the attacker's WiGLE snapshot)\n",
		world.City.DB.Len(), world.WiGLE.Len())

	res, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 30*time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack: %s at the %s, %s\n", res.Attack, res.Venue, res.SlotLabel)
	fmt.Println(res.Tally)
	fmt.Printf("h   = %.1f%%  (paper: ~19%% in the canteen)\n", 100*res.Tally.HitRate())
	fmt.Printf("h_b = %.1f%%  (paper: 12-18%% depending on venue)\n", 100*res.Tally.BroadcastHitRate())

	// The engine exposes the SSID database for inspection.
	fmt.Println("\ntop lure SSIDs after the run:")
	for i, e := range res.Engine.TopEntries(5) {
		fmt.Printf("%d. %-28s weight=%-6.0f hits=%-3d source=%v\n",
			i+1, e.SSID, e.Weight, e.Hits, e.Source)
	}
}
