// Baseline comparison: the paper's headline claim is that City-Hunter
// captures 4-8× more broadcast-probing phones than MANA, while KARMA
// captures none at all. This example deploys all four attackers on the
// same lunch-time canteen crowd and prints the comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	attacks := []cityhunter.AttackKind{
		cityhunter.KARMA,
		cityhunter.MANA,
		cityhunter.KnownBeacons, // wifiphisher-style related attack
		cityhunter.CityHunterPreliminary,
		cityhunter.CityHunter,
	}

	fmt.Printf("%-28s %7s %10s %8s %8s\n", "attack", "clients", "captured", "h", "h_b")
	var manaHb, chHb float64
	for _, kind := range attacks {
		res, err := world.Run(cityhunter.CanteenVenue(), kind,
			cityhunter.LunchSlot, 30*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Tally
		fmt.Printf("%-28s %7d %10d %7.1f%% %7.1f%%\n",
			res.Attack, t.Total, t.ConnectedDirect+t.ConnectedBroadcast,
			100*t.HitRate(), 100*t.BroadcastHitRate())
		switch kind {
		case cityhunter.MANA:
			manaHb = t.BroadcastHitRate()
		case cityhunter.CityHunter:
			chHb = t.BroadcastHitRate()
		}
	}
	if manaHb > 0 {
		fmt.Printf("\nCity-Hunter improves on MANA's broadcast hit rate by %.1f× (paper: 4-8×)\n",
			chHb/manaHb)
	} else {
		fmt.Println("\nMANA captured no broadcast probers at all in this run")
	}
}
