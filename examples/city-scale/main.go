// City-scale hunting with the level-of-detail population: a dozen-district
// synthetic city carries 100,000 far-field pedestrians who exist only as
// arrival/route state — until one of them walks into the promotion boundary
// around an attacker site, where it is promoted to a full-fidelity phone
// (scanning, probing, associating) and demoted back on exit. Three sites
// hunt at once; the whole city hour finishes in well under five minutes
// because only the promoted minority ever touches the radio medium.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	seed := int64(1)
	world, err := cityhunter.NewWorld(
		cityhunter.WithSeed(seed),
		cityhunter.WithCityConfig(cityhunter.CityScaleCityConfig(seed)),
	)
	if err != nil {
		log.Fatal(err)
	}

	sites := []cityhunter.Venue{
		cityhunter.StationVenue(),
		cityhunter.CanteenVenue(),
		cityhunter.MallVenue(),
	}
	stops := world.City.RouteStops()
	fmt.Printf("city: %d districts, 3 attacked; far field: 100000 pedestrians\n\n", len(stops))

	start := time.Now()
	res, err := world.DeploySites(sites, cityhunter.CityHunter,
		cityhunter.LunchSlot, time.Hour,
		cityhunter.WithPopulationScale(100_000),
		cityhunter.WithLODRadius(80),
		cityhunter.WithCityRoutes(stops))
	if err != nil {
		log.Fatal(err)
	}

	ff := res.FarField
	fmt.Printf("one virtual hour simulated in %v wall clock\n", time.Since(start).Truncate(time.Millisecond))
	fmt.Printf("promoted %d of %d pedestrians (%.2f%%), peak %d concurrent full-fidelity clients\n\n",
		ff.Promoted, ff.Pedestrians, 100*float64(ff.Promoted)/float64(ff.Pedestrians), ff.PeakPromoted)

	fmt.Printf("%-18s %10s %6s %8s\n", "site", "promotions", "hits", "hit rate")
	for _, s := range ff.Sites {
		rate := 0.0
		if s.Promotions > 0 {
			rate = 100 * float64(s.Hits) / float64(s.Promotions)
		}
		fmt.Printf("%-18s %10d %6d %7.1f%%\n", s.Name, s.Promotions, s.Hits, rate)
	}
	fmt.Printf("\nfar-field capture: h_b = %.1f%% over %d promoted phones\n",
		100*ff.Tally.BroadcastHitRate(), ff.Tally.Total)
	fmt.Printf("venue crowds at the attacked sites (classic tier): %v\n", res.Tally)
}
