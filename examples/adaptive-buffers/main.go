// Adaptive buffers: §IV-C of the paper balances the Popularity and
// Freshness buffers with an ARC-inspired rule — ghost-list hits grow the
// buffer that proved too small. This example deploys City-Hunter in the
// canteen (groups share PNL entries, freshness pays off) and the subway
// passage, sampling the buffer sizes every two minutes, and shows the split
// drifting differently at the two venues.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}

	show := func(venue cityhunter.Venue, slot int) {
		res, err := world.Run(venue, cityhunter.CityHunter, slot, 30*time.Minute,
			cityhunter.WithSampling(2*time.Minute))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s, %s]\n", res.Venue, res.SlotLabel)
		fmt.Printf("%-8s %8s %4s %4s\n", "t", "DB size", "PB", "FB")
		for _, s := range res.Engine.Samples() {
			fmt.Printf("%-8s %8d %4d %4d\n", s.At.Truncate(time.Second), s.DBSize, s.PB, s.FB)
		}
		breakdown := res.Breakdown()
		fmt.Printf("hits served: popularity side %d, freshness side %d  (h_b %.1f%%)\n\n",
			breakdown.FromPopularity, breakdown.FromFreshness,
			100*res.Tally.BroadcastHitRate())
	}

	show(cityhunter.CanteenVenue(), cityhunter.LunchSlot)
	show(cityhunter.PassageVenue(), cityhunter.MorningRushSlot)

	fmt.Println("The total batch stays at 40 SSIDs; the PB/FB split adapts to whether")
	fmt.Println("fresh (companion-shared) SSIDs or globally popular SSIDs are hitting.")
}
