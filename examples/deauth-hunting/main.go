// Deauth hunting: §V-B observes that phones already associated to a
// legitimate AP barely probe, hiding them from the attacker — and proposes
// spoofed deauthentication to force them back into scanning. This example
// fills the canteen with a crowd where 60 % of phones arrive connected to
// the venue's AP and compares City-Hunter with the extension off and on.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	const preconnected = 0.6

	off, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 30*time.Minute,
		cityhunter.WithPreconnected(preconnected))
	if err != nil {
		log.Fatal(err)
	}

	on, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 30*time.Minute,
		cityhunter.WithDeauth(preconnected))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crowd: %.0f%% of phones arrive connected to the venue AP\n\n", 100*preconnected)
	fmt.Printf("extension off: %v\n", off.Tally)
	fmt.Printf("extension on : %v\n", on.Tally)
	fmt.Printf("\nspoofed deauthentications sent: %d\n", on.Report.DeauthsSent)

	offV := off.Tally.ConnectedDirect + off.Tally.ConnectedBroadcast
	onV := on.Tally.ConnectedDirect + on.Tally.ConnectedBroadcast
	fmt.Printf("victims: %d -> %d", offV, onV)
	if offV > 0 {
		fmt.Printf(" (%.1f×)", float64(onV)/float64(offV))
	}
	fmt.Println()
	fmt.Println("\nConnected phones stay silent until the spoofed deauth (forged from the")
	fmt.Println("legitimate AP's BSSID, learnt from its beacons) knocks them back into")
	fmt.Println("the scanning state City-Hunter preys on.")
}
