// Multi-site deployment: the paper hunts its four venues one at a time;
// this example hunts two of them at once. A canteen and a subway-passage
// attacker share one city, half the phones finishing lunch walk over to the
// passage, and the example compares what the pair captures when each site
// keeps its own City-Hunter database versus when both sites work one shared
// database — a roamed phone then gets fresh SSIDs instead of repeats.
package main

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

func main() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	sites := []cityhunter.Venue{
		cityhunter.CanteenVenue(),
		cityhunter.PassageVenue(),
	}

	planes := []cityhunter.KnowledgePlane{
		cityhunter.Isolated,
		cityhunter.PeriodicSync,
		cityhunter.Shared,
	}
	fmt.Printf("%-14s %8s %8s %8s %7s\n", "knowledge", "phones", "captured", "h_b", "roams")
	var isolated, shared cityhunter.Tally
	for _, plane := range planes {
		res, err := world.DeploySites(sites, cityhunter.CityHunter,
			cityhunter.LunchSlot, 45*time.Minute,
			cityhunter.WithKnowledgePlane(plane),
			cityhunter.WithRoaming(0.5),
			cityhunter.WithSyncPeriod(5*time.Minute))
		if err != nil {
			log.Fatal(err)
		}
		t := res.Tally
		fmt.Printf("%-14s %8d %8d %7.1f%% %7d\n",
			plane, t.Total, t.ConnectedDirect+t.ConnectedBroadcast,
			100*t.BroadcastHitRate(), res.Roams)
		for _, site := range res.Sites {
			st := site.Tally
			fmt.Printf("  %-18s %d phones, h_b %.1f%%\n",
				site.Venue, st.Total, 100*st.BroadcastHitRate())
		}
		switch plane {
		case cityhunter.Isolated:
			isolated = t
		case cityhunter.Shared:
			shared = t
		}
	}

	fmt.Printf("\nshared database captured %d broadcast probers to isolated's %d",
		shared.ConnectedBroadcast, isolated.ConnectedBroadcast)
	if shared.ConnectedBroadcast > isolated.ConnectedBroadcast {
		fmt.Println(" — pooling hunter knowledge pays off")
	} else {
		fmt.Println()
	}

	// Deployment plans round-trip as JSON, so a campaign can be planned
	// once and replayed: see cityhunter.SaveDeployment / LoadDeployment
	// and the -deployment flag of cmd/cityhunter-sim.
}
