package cityhunter_test

import (
	"testing"
	"time"

	"cityhunter"
)

// TestDeployWithPopulationScale exercises the public level-of-detail
// surface: a far-field population routed through citygen districts, with
// three attacked sites, reporting promoted-client accounting.
func TestDeployWithPopulationScale(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale deployment run")
	}
	w := apiWorld(t)
	sites := []cityhunter.Venue{
		cityhunter.StationVenue(),
		cityhunter.CanteenVenue(),
		cityhunter.MallVenue(),
	}
	res, err := w.DeploySites(sites, cityhunter.CityHunter,
		cityhunter.LunchSlot, 45*time.Minute,
		cityhunter.WithRunOptions(cityhunter.WithArrivalScale(0.2)),
		cityhunter.WithPopulationScale(8000),
		cityhunter.WithLODRadius(80),
		cityhunter.WithCityRoutes(w.City.RouteStops()),
	)
	if err != nil {
		t.Fatal(err)
	}
	ff := res.FarField
	if ff == nil {
		t.Fatal("no far-field result on a scaled deployment")
	}
	if ff.Pedestrians != 8000 {
		t.Errorf("pedestrians = %d, want 8000", ff.Pedestrians)
	}
	if len(ff.Sites) != len(sites) {
		t.Fatalf("%d far-field site entries for %d sites", len(ff.Sites), len(sites))
	}
	// The attacked venues sit in real citygen districts, so some of the
	// 3000 pedestrians routed through a boundary within ten minutes.
	if ff.Promoted == 0 {
		t.Error("no pedestrian promoted despite district routing")
	}
	if ff.PeakPromoted > ff.Promoted {
		t.Errorf("peak promoted %d exceeds distinct promoted %d", ff.PeakPromoted, ff.Promoted)
	}

	// Options compose in any order: scale after radius works too, and a
	// deployment without scale has no far-field result at all.
	res2, err := w.DeploySites(sites[:1], cityhunter.CityHunter,
		cityhunter.LunchSlot, 2*time.Minute,
		cityhunter.WithRunOptions(cityhunter.WithArrivalScale(0.2)),
		cityhunter.WithLODRadius(80),
		cityhunter.WithPopulationScale(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FarField == nil || res2.FarField.Pedestrians != 100 {
		t.Errorf("composed options lost the population: %+v", res2.FarField)
	}
	plain, err := w.DeploySites(sites[:1], cityhunter.CityHunter,
		cityhunter.LunchSlot, time.Minute,
		cityhunter.WithRunOptions(cityhunter.WithArrivalScale(0.2)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FarField != nil {
		t.Error("deployment without population scale grew a far-field result")
	}
}

// TestCityScaleCityConfig checks the dozen-district city variant and its
// attractiveness-weighted routing stops.
func TestCityScaleCityConfig(t *testing.T) {
	cfg := cityhunter.CityScaleCityConfig(5)
	if len(cfg.Hotspots) < 12 {
		t.Fatalf("city-scale config has %d districts, want >= 12", len(cfg.Hotspots))
	}
	w, err := cityhunter.NewWorld(cityhunter.WithSeed(5), cityhunter.WithCityConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	stops := w.City.RouteStops()
	if len(stops) != len(cfg.Hotspots) {
		t.Fatalf("%d route stops for %d districts", len(stops), len(cfg.Hotspots))
	}
	for i, s := range stops {
		if s.Weight <= 0 || s.Radius <= 0 {
			t.Errorf("stop %d (%s) degenerate: weight %v radius %v",
				i, cfg.Hotspots[i].Name, s.Weight, s.Radius)
		}
	}
}
