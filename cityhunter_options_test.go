package cityhunter_test

import (
	"testing"
	"time"

	"cityhunter"
)

// TestRunOptionMatrix exercises every run option against a small crowd and
// checks its observable effect.
func TestRunOptionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("several short runs")
	}
	w := apiWorld(t)
	quick := []cityhunter.RunOption{cityhunter.WithArrivalScale(0.4)}
	run := func(extra ...cityhunter.RunOption) *cityhunter.Result {
		t.Helper()
		res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 5*time.Minute, append(quick, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("WithWiGLE", func(t *testing.T) {
		gapped := run()
		perfect := run(cityhunter.WithWiGLE(w.City.DB))
		if perfect.Engine.SeededSize() < gapped.Engine.SeededSize() {
			t.Errorf("perfect DB seeded %d < gapped %d",
				perfect.Engine.SeededSize(), gapped.Engine.SeededSize())
		}
	})

	t.Run("WithFrameLoss validation", func(t *testing.T) {
		if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			0, time.Minute, cityhunter.WithFrameLoss(1.5)); err == nil {
			t.Error("loss > 1 accepted")
		}
	})

	t.Run("WithCanaryClients validation", func(t *testing.T) {
		if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			0, time.Minute, cityhunter.WithCanaryClients(-0.5)); err == nil {
			t.Error("negative canary fraction accepted")
		}
	})

	t.Run("WithSentinel", func(t *testing.T) {
		res := run(cityhunter.WithSentinel())
		if res.Sentinel == nil {
			t.Fatal("no sentinel")
		}
	})

	t.Run("WithTrace", func(t *testing.T) {
		res := run(cityhunter.WithTrace())
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Fatal("no trace capture")
		}
	})

	t.Run("WithCautiousMirror sidesteps canaries", func(t *testing.T) {
		res := run(cityhunter.WithCanaryClients(1.0), cityhunter.WithCautiousMirror())
		if res.CanaryDetections != 0 {
			t.Errorf("cautious mirror unmasked %d times", res.CanaryDetections)
		}
	})

	t.Run("WithScanInterval", func(t *testing.T) {
		slow := run(cityhunter.WithScanInterval(5 * time.Minute))
		fast := run(cityhunter.WithScanInterval(20 * time.Second))
		slowProbes, fastProbes := 0, 0
		for _, o := range slow.Outcomes {
			if o.Probed {
				slowProbes++
			}
		}
		for _, o := range fast.Outcomes {
			if o.Probed {
				fastProbes++
			}
		}
		// With a 5-minute interval inside a 5-minute run, many phones
		// never scan at all.
		if slowProbes >= fastProbes {
			t.Errorf("slow scanning heard %d probers, fast heard %d", slowProbes, fastProbes)
		}
	})

	t.Run("WithDirectProberFraction", func(t *testing.T) {
		none := run(cityhunter.WithDirectProberFraction(0))
		if none.Tally.Direct != 0 {
			t.Errorf("0%% unsafe still produced %d direct probers", none.Tally.Direct)
		}
		all := run(cityhunter.WithDirectProberFraction(1))
		if all.Tally.Broadcast != 0 {
			t.Errorf("100%% unsafe still left %d broadcast-only clients", all.Tally.Broadcast)
		}
	})
}

// TestKnownBeaconsViaPublicAPI runs the related-work baseline through the
// façade.
func TestKnownBeaconsViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("10-minute run")
	}
	w := apiWorld(t)
	res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.KnownBeacons,
		cityhunter.LunchSlot, 10*time.Minute, cityhunter.WithArrivalScale(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attack != "Known Beacons" {
		t.Errorf("Attack = %q", res.Attack)
	}
	if res.Report.BeaconsSent == 0 {
		t.Error("no beacons sent")
	}
	if res.Engine != nil {
		t.Error("known beacons should not expose a City-Hunter engine")
	}
}
