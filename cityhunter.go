// Package cityhunter is a research reproduction of "City-Hunter: Hunting
// Smartphones in Urban Areas" (ICDCS 2017): an evil-twin Wi-Fi attacker
// that lures smartphones which disclose no SSIDs, by answering their
// broadcast probe requests with carefully selected SSID guesses.
//
// Because the original system needs injection-capable Wi-Fi hardware and a
// live crowd, this library ships a faithful discrete-event substitute: an
// 802.11 management-plane simulator, a synthetic city with a
// WiGLE-substitute AP database and a photo-derived crowd heat map, a
// smartphone population model, and the three attack strategies the paper
// compares (KARMA, MANA, City-Hunter). Every table and figure of the
// paper's evaluation can be regenerated; see the experiments command and
// EXPERIMENTS.md.
//
// # Quick start
//
//	world, err := cityhunter.NewWorld()
//	if err != nil { ... }
//	res, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
//		cityhunter.LunchSlot, 30*time.Minute)
//	if err != nil { ... }
//	fmt.Println(res.Tally) // hit rate h and broadcast hit rate h_b
//
// All randomness derives from the world seed: identical seeds give
// byte-identical results.
package cityhunter

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cityhunter/internal/campaign"
	"cityhunter/internal/citygen"
	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/detect"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/linker"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/obs/monitor"
	"cityhunter/internal/plan"
	"cityhunter/internal/pnl"
	"cityhunter/internal/scenario"
	"cityhunter/internal/serve"
	"cityhunter/internal/stats"
	"cityhunter/internal/trace"
	"cityhunter/internal/wigle"
)

// Re-exported building blocks. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// World-building inputs.
	CityConfig = citygen.Config
	City       = citygen.City
	HeatMap    = heatmap.Map
	PNLConfig  = pnl.Config
	PNLModel   = pnl.Model
	WiGLEDB    = wigle.DB

	// Experiment surface.
	Venue      = scenario.Venue
	AttackKind = scenario.AttackKind
	Result     = scenario.Result
	CoreConfig = core.Config

	// MAC randomization and de-anonymisation: the phone-side rotation
	// policy, the attacker-side linker selector, and the ground-truth
	// re-linking grade a run attaches to its Result.
	RandomizationPolicy = client.RandomizationPolicy
	LinkerKind          = scenario.LinkerKind
	LinkReport          = linker.Report

	// Multi-site deployments: N attacker sites in one city, phones
	// roaming between them, and a knowledge plane joining the hunters'
	// databases (see World.DeploySites).
	DeploymentConfig = scenario.DeploymentConfig
	DeploymentResult = scenario.DeploymentResult
	KnowledgePlane   = scenario.KnowledgePlane
	TransitModel     = mobility.TransitModel

	// City-scale level-of-detail population: a statistical far-field tier
	// promoted to full client fidelity only inside each site's promotion
	// boundary (see WithPopulationScale, WithLODRadius, WithFarField).
	FarFieldConfig = scenario.FarFieldConfig
	FarFieldResult = scenario.FarFieldResult
	FarFieldSite   = scenario.FarFieldSite
	RouteStop      = mobility.RouteStop
	RouteModel     = mobility.RouteModel
	// RunConfig is the raw per-run configuration RunOptions assemble. It
	// is exposed for RunSpec.Configure hooks; most callers never touch it
	// directly.
	RunConfig = scenario.Config

	// Campaigns: declarative multi-run orchestration over a bounded
	// worker pool (see World.RunCampaign).
	RunSpec           = campaign.Spec
	CampaignPool      = campaign.Pool
	CampaignProgress  = campaign.Progress
	CampaignResult    = campaign.Outcome
	CampaignAggregate = campaign.Aggregate

	// Metrics.
	Tally     = stats.Tally
	Breakdown = stats.Breakdown
	Outcome   = stats.ClientOutcome
	Histogram = stats.Histogram

	// Countermeasures and capture.
	Sentinel     = detect.Sentinel
	Finding      = detect.Finding
	TraceMonitor = trace.Monitor
	TraceEntry   = trace.Entry

	// Observability: the metrics snapshot, the flight-recorder journal and
	// the Perfetto span trace a run can attach to its Result.
	MetricsSnapshot = obs.Snapshot
	MetricPoint     = obs.MetricPoint
	FlightRecorder  = obs.Journal
	JournalEvent    = obs.Event
	PerfettoTrace   = obs.Trace

	// Live monitoring: the streaming telemetry sink runs publish into, and
	// the HTTP monitor server that implements it.
	TelemetryPublisher = obs.Publisher
	TelemetryRun       = obs.RunPublisher
	TelemetryRunInfo   = obs.RunInfo
	MonitorServer      = monitor.Server
)

// Attack strategies.
const (
	// KARMA answers directed probes only (Dai Zovi & Macaulay 2005).
	KARMA = scenario.KARMA
	// MANA additionally harvests disclosed SSIDs and replays them
	// (White & de Villiers, DEF CON 22).
	MANA = scenario.MANA
	// CityHunterPreliminary is the paper's §III design: WiGLE seeding
	// plus per-client untried rotation.
	CityHunterPreliminary = scenario.CityHunterPreliminary
	// CityHunter is the full §IV design with adaptive popularity and
	// freshness buffers.
	CityHunter = scenario.CityHunter
	// KnownBeacons is the wifiphisher-style related attack: forged
	// beacons cycling the lure list, no probe responses.
	KnownBeacons = scenario.KnownBeacons
)

// Knowledge planes for multi-site deployments.
const (
	// Isolated gives every site its own database — N independent copies
	// of the paper's single-venue deployment.
	Isolated = scenario.Isolated
	// PeriodicSync exchanges hit records between per-site databases
	// every sync period.
	PeriodicSync = scenario.PeriodicSync
	// Shared runs one database (and one per-client rotation state)
	// behind all sites.
	Shared = scenario.Shared
)

// MAC randomization policies (see WithMACRandomization).
const (
	// RandomizeNone keeps the phone's stable identity MAC.
	RandomizeNone = client.RandomizeNone
	// RandomizePerScan draws a fresh MAC at the start of every scan
	// cycle.
	RandomizePerScan = client.RandomizePerScan
	// RandomizePerBurst draws a fresh MAC for every per-channel probe
	// burst within a scan.
	RandomizePerBurst = client.RandomizePerBurst
	// RandomizeTimed rotates on a timer (see WithRandomizeEvery).
	RandomizeTimed = client.RandomizeTimed
)

// De-anonymisation linkers (see WithLinker).
const (
	// LinkerMAC is the identity mapping: one MAC, one device.
	LinkerMAC = scenario.LinkerMAC
	// LinkerSeq links by 802.11 sequence-counter continuity.
	LinkerSeq = scenario.LinkerSeq
	// LinkerFingerprint links by the probe-request IE fingerprint.
	LinkerFingerprint = scenario.LinkerFingerprint
	// LinkerPNL links by directed-probe PNL order.
	LinkerPNL = scenario.LinkerPNL
	// LinkerComposite combines all three signals.
	LinkerComposite = scenario.LinkerComposite
)

// MaxDeploymentSites bounds a deployment's site count.
const MaxDeploymentSites = scenario.MaxSites

// AutoPartitions asks WithPartitions for one partition per deployment site.
const AutoPartitions = scenario.AutoPartitions

// Common hour slots of the 8am–8pm profiles.
const (
	// MorningRushSlot is 8am–9am.
	MorningRushSlot = 0
	// LunchSlot is 12pm–1pm.
	LunchSlot = 4
	// EveningRushSlot is 6pm–7pm.
	EveningRushSlot = 10
)

// City presets, re-exported.
var (
	// DefaultCityConfig is the Hong Kong-flavoured dense city the paper's
	// numbers calibrate against.
	DefaultCityConfig = citygen.DefaultConfig
	// SparseCityConfig is a low-density suburb variant with a thin
	// public-Wi-Fi ecosystem.
	SparseCityConfig = citygen.SparseConfig
	// CityScaleCityConfig is the dozen-district variant built for
	// level-of-detail runs: a deployment attacking three districts leaves
	// the rest as pure far-field traffic.
	CityScaleCityConfig = citygen.CityScaleConfig
	// DefaultRouteModel is the far-field itinerary model.
	DefaultRouteModel = mobility.DefaultRoute
)

// Venue persistence, re-exported: venues round-trip through a declarative
// JSON format so deployments can be shared as files (see
// cmd/cityhunter-sim's -venue-file flag).
var (
	// SaveVenue writes a venue as JSON.
	//
	// Deprecated: prefer SavePlan with a KindVenue Plan; this writer is
	// kept for compatibility and emits byte-identical output.
	SaveVenue = scenario.SaveVenue
	// LoadVenue reads and validates a venue written by SaveVenue.
	//
	// Deprecated: prefer LoadPlan; this reader stays for existing
	// standalone venue files.
	LoadVenue = scenario.LoadVenue
)

// Deployment persistence, re-exported: deployment plans (sites, knowledge
// plane, roaming model — not the Base experiment config) round-trip
// through a declarative JSON format mirroring the venue files (see
// cmd/cityhunter-sim's -deployment flag).
var (
	// SaveDeployment writes a deployment plan as JSON.
	//
	// Deprecated: prefer SavePlan with a KindDeployment Plan; this writer
	// is kept for compatibility and emits byte-identical output.
	SaveDeployment = scenario.SaveDeployment
	// LoadDeployment reads and validates a plan written by SaveDeployment.
	//
	// Deprecated: prefer LoadPlan; this reader stays for existing
	// standalone deployment files.
	LoadDeployment = scenario.LoadDeployment
	// DefaultTransit returns the urban walking-speed transit model.
	DefaultTransit = mobility.DefaultTransit
)

// Campaign persistence, re-exported: run specs round-trip through a
// declarative JSON format mirroring the venue files, so whole evaluations
// can be shared as spec files (see cmd/cityhunter-sim's -campaign-file
// flag). RunSpec.Configure hooks are programmatic-only and not serialised.
var (
	// SaveCampaign writes run specs as JSON.
	//
	// Deprecated: prefer SavePlan with a KindCampaign Plan; this writer is
	// kept for compatibility and emits byte-identical output.
	SaveCampaign = campaign.Save
	// LoadCampaign reads and validates specs written by SaveCampaign (or
	// hand-written: venues may be referenced by built-in name). Errors
	// name the offending run and field.
	//
	// Deprecated: prefer LoadPlan; this reader stays for existing
	// standalone campaign files.
	LoadCampaign = campaign.Load
)

// Plan persistence: the versioned envelope that unifies the three
// standalone formats. A Plan declares its kind (venue, deployment or
// campaign) and carries exactly that payload; files round-trip through
// SavePlan/LoadPlan with strict unknown-field rejection end to end, and
// the campaign server accepts only this envelope.
type (
	// Plan is the versioned envelope: Version, Kind, and the one payload
	// matching the kind.
	Plan = plan.Plan
	// PlanKind names a plan's payload: KindVenue, KindDeployment or
	// KindCampaign.
	PlanKind = plan.Kind
	// FieldError is a validation failure annotated with the offending
	// field's path — the structure behind the campaign server's 400
	// responses. Its message is the bare reason, so wrapped errors read
	// the same as they always have.
	FieldError = scenario.FieldError
)

// Plan kinds.
const (
	// KindVenue plans carry a single venue.
	KindVenue = plan.KindVenue
	// KindDeployment plans carry a multi-site deployment.
	KindDeployment = plan.KindDeployment
	// KindCampaign plans carry a list of run specs.
	KindCampaign = plan.KindCampaign
)

// Plan envelope I/O, re-exported.
var (
	// SavePlan writes a plan envelope as indented JSON.
	SavePlan = plan.Save
	// LoadPlan reads and validates a plan envelope, rejecting unknown
	// fields everywhere (including inside the payload).
	LoadPlan = plan.Load
	// EncodePlan renders a plan in its canonical compact form — the exact
	// bytes the campaign server hashes for its result store.
	EncodePlan = plan.Encode
	// DecodePlan parses the canonical or indented envelope form.
	DecodePlan = plan.Decode
)

// Venue constructors, re-exported.
var (
	// PassageVenue is the subway passage (everyone moving).
	PassageVenue = scenario.PassageVenue
	// CanteenVenue is the canteen (almost everyone seated).
	CanteenVenue = scenario.CanteenVenue
	// MallVenue is the shopping centre (mixed mobility).
	MallVenue = scenario.MallVenue
	// StationVenue is the railway station (mixed, commuter peaks).
	StationVenue = scenario.StationVenue
	// AllVenues lists the four in Figure 5 order.
	AllVenues = scenario.AllVenues
)

// World is a generated urban environment ready to host experiments: the
// city with its access points, the photo-derived heat map, the phone
// population model, and the attacker's (imperfect) WiGLE snapshot.
type World struct {
	// City is the synthetic environment.
	City *City
	// Heat is the crowd heat map derived from geotagged photos.
	Heat *HeatMap
	// PNL is the phone preferred-network-list model.
	PNL *PNLModel
	// WiGLE is the attacker's offline database: the city's networks with
	// crowd-sourcing coverage gaps.
	WiGLE *WiGLEDB

	seed int64
}

// worldOptions collects the functional options of NewWorld.
type worldOptions struct {
	seed      int64
	cityCfg   *CityConfig
	pnlCfg    *PNLConfig
	missSmall float64
	missMid   float64
	perfectDB bool
	heatCell  float64
}

// WorldOption customises NewWorld.
type WorldOption interface{ applyWorld(*worldOptions) }

type worldOptionFunc func(*worldOptions)

func (f worldOptionFunc) applyWorld(o *worldOptions) { f(o) }

// WithSeed sets the world seed (default 1).
func WithSeed(seed int64) WorldOption {
	return worldOptionFunc(func(o *worldOptions) { o.seed = seed })
}

// WithCityConfig replaces the default synthetic-city configuration.
func WithCityConfig(cfg CityConfig) WorldOption {
	return worldOptionFunc(func(o *worldOptions) { o.cityCfg = &cfg })
}

// WithPNLConfig replaces the calibrated phone-population configuration.
func WithPNLConfig(cfg PNLConfig) WorldOption {
	return worldOptionFunc(func(o *worldOptions) { o.pnlCfg = &cfg })
}

// WithWiGLEGaps sets the crowd-sourcing miss probabilities for small
// (≤3 APs) and mid-size (4–20 APs) networks. Defaults are 0.35 and 0.05.
func WithWiGLEGaps(missSmall, missMid float64) WorldOption {
	return worldOptionFunc(func(o *worldOptions) {
		o.missSmall, o.missMid = missSmall, missMid
	})
}

// WithPerfectWiGLE gives the attacker a gap-free database (an ablation).
func WithPerfectWiGLE() WorldOption {
	return worldOptionFunc(func(o *worldOptions) { o.perfectDB = true })
}

// WithHeatCellSize sets the heat-map grid cell edge in metres (default 200).
func WithHeatCellSize(metres float64) WorldOption {
	return worldOptionFunc(func(o *worldOptions) { o.heatCell = metres })
}

// NewWorld generates a world. With no options it builds the calibrated
// default: an 8 km × 8 km Hong Kong-flavoured city, 200 m heat cells, and
// a WiGLE snapshot missing 35 % of small networks.
func NewWorld(opts ...WorldOption) (*World, error) {
	o := worldOptions{
		seed:      1,
		missSmall: 0.35,
		missMid:   0.05,
		heatCell:  200,
	}
	for _, opt := range opts {
		opt.applyWorld(&o)
	}

	cityCfg := citygen.DefaultConfig(o.seed)
	if o.cityCfg != nil {
		cityCfg = *o.cityCfg
		cityCfg.Seed = o.seed
	}
	city, err := citygen.Generate(cityCfg)
	if err != nil {
		return nil, fmt.Errorf("cityhunter: generate city: %w", err)
	}
	heat, err := heatmap.FromPhotos(city.Bounds, o.heatCell, city.Photos)
	if err != nil {
		return nil, fmt.Errorf("cityhunter: build heat map: %w", err)
	}
	pnlCfg := pnl.DefaultConfig()
	if o.pnlCfg != nil {
		pnlCfg = *o.pnlCfg
	}
	model, err := pnl.NewModel(city.DB, heat, pnlCfg)
	if err != nil {
		return nil, fmt.Errorf("cityhunter: build PNL model: %w", err)
	}
	db := city.DB
	if !o.perfectDB {
		db, err = city.DB.SampleCrowdsourced(rand.New(rand.NewSource(o.seed+999)), o.missSmall, o.missMid)
		if err != nil {
			return nil, fmt.Errorf("cityhunter: sample WiGLE: %w", err)
		}
	}
	return &World{City: city, Heat: heat, PNL: model, WiGLE: db, seed: o.seed}, nil
}

// Seed returns the world seed.
func (w *World) Seed() int64 { return w.seed }

// runOptions collects the functional options of Run.
type runOptions struct {
	cfg scenario.Config
}

// RunOption customises a single experiment run.
type RunOption interface{ applyRun(*runOptions) }

type runOptionFunc func(*runOptions)

func (f runOptionFunc) applyRun(o *runOptions) { f(o) }

// WithRunSeed decorrelates repeated runs (default: the world seed).
func WithRunSeed(seed int64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Seed = seed })
}

// WithDirectProberFraction sets the share of unsafe phones (default 0.15).
func WithDirectProberFraction(f float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.DirectProberFraction = f })
}

// WithScanInterval sets the mean phone scan period (default 60 s).
func WithScanInterval(d time.Duration) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.ScanInterval = d })
}

// WithDeauth arms the §V-B deauthentication extension and marks the given
// fraction of phones as pre-connected to the venue's legitimate AP.
func WithDeauth(preconnectedFraction float64) RunOption {
	return runOptionFunc(func(o *runOptions) {
		o.cfg.EnableDeauth = true
		o.cfg.PreconnectedFraction = preconnectedFraction
	})
}

// WithPreconnected marks a fraction of phones pre-connected without arming
// the deauth extension (the control condition).
func WithPreconnected(fraction float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.PreconnectedFraction = fraction })
}

// WithCoreConfig overrides the City-Hunter engine configuration (for
// ablations: fixed buffers, no rotation, carrier seeding, ...).
func WithCoreConfig(cfg CoreConfig) RunOption {
	return runOptionFunc(func(o *runOptions) { c := cfg; o.cfg.CoreConfig = &c })
}

// WithSampling records engine state every period (Figure 1-style series).
func WithSampling(period time.Duration) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.SampleEvery = period })
}

// WithArrivalScale multiplies the venue's arrival rates (a speed knob).
func WithArrivalScale(scale float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.ArrivalScale = scale })
}

// WithCanaryClients makes the given fraction of phones run the canary-probe
// evil-twin detector: they unmask the attacker with a probe for a
// nonexistent SSID and ignore it afterwards.
func WithCanaryClients(fraction float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.CanaryFraction = fraction })
}

// WithWiGLE overrides the attacker's offline database for one run —
// sensitivity studies resample the crowd-sourcing gaps without rebuilding
// the world.
func WithWiGLE(db *WiGLEDB) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.WiGLE = db })
}

// WithFrameLoss drops each frame delivery independently with probability p
// — interference the ideal disk model otherwise ignores. Failure-injection
// knob; the calibrated default is 0.
func WithFrameLoss(p float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.FrameLoss = p })
}

// WithRandomizedMACs makes the given fraction of phones rotate their probe
// MAC every scan, the privacy default of modern mobile OSes. It defeats
// the attacker's per-client rotation without any cooperation from the
// network side.
func WithRandomizedMACs(fraction float64) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.RandomizeMACFraction = fraction })
}

// WithMACRandomization makes the given fraction of phones rotate their
// source MAC under an explicit policy (per scan, per channel burst, or on
// a timer). Unlike the legacy WithRandomizedMACs shorthand, policy-driven
// phones also emit their chipset IE fingerprint — the stable observable a
// de-anonymisation linker (WithLinker) can exploit.
func WithMACRandomization(fraction float64, policy RandomizationPolicy) RunOption {
	return runOptionFunc(func(o *runOptions) {
		o.cfg.RandomizeMACFraction = fraction
		o.cfg.Randomization = policy
	})
}

// WithRandomizeEvery sets the rotation period for RandomizeTimed phones
// (default 15 min).
func WithRandomizeEvery(d time.Duration) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.RandomizeEvery = d })
}

// WithLinker selects the attacker's MAC de-anonymisation strategy: how
// the hunter database groups observed MACs into device tracks. The
// default LinkerMAC treats every MAC as its own device (the historical
// behaviour); the others re-link rotated MACs by sequence-counter
// continuity, IE fingerprints, PNL order, or their composite.
// Result.Links grades the chosen linker against ground truth.
func WithLinker(kind LinkerKind) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Linker = kind })
}

// WithCautiousMirror makes the attacker answer directed probes only for
// SSIDs already in its database — its counter-move against canary probing,
// at the cost of first-sighting direct hits.
func WithCautiousMirror() RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.CautiousMirror = true })
}

// WithSentinel deploys a passive many-SSIDs-one-BSSID detector at the
// venue; Result.Sentinel exposes what it flagged and when.
func WithSentinel() RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Sentinel = true })
}

// WithTrace records every frame at the venue into Result.Trace (bounded to
// about a million entries).
func WithTrace() RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Trace = true })
}

// WithMetrics instruments every layer of the run — sim engine, medium,
// attacker, City-Hunter engine, runner — with the observability registry.
// Result.Metrics holds the snapshot; identical seeds produce byte-identical
// dumps.
func WithMetrics() RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Metrics = true })
}

// WithFlightRecorder arms the run flight recorder: a ring-bounded journal
// of structured, virtually-timestamped events (buffer adaptations, ghost
// hits, associations, deauth sweeps, frame losses) in Result.Journal.
// capacity <= 0 selects the default of 8192 events; older events are
// overwritten and counted once the ring fills.
func WithFlightRecorder(capacity int) RunOption {
	return runOptionFunc(func(o *runOptions) {
		if capacity <= 0 {
			capacity = obs.DefaultJournalCap
		}
		o.cfg.FlightRecorderCap = capacity
	})
}

// WithPerfettoTrace collects Chrome/Perfetto trace spans — client
// lifecycles, scan cycles, attacker reply batches — into Result.Spans,
// whose WriteJSON output opens directly in chrome://tracing or
// ui.perfetto.dev.
func WithPerfettoTrace() RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.SpanTrace = true })
}

// NewMonitorServer builds an unstarted monitor server. Use it directly as
// a TelemetryPublisher (via WithMonitorServer) for in-process inspection,
// or call its Start method to expose /metrics, /runs, /events and
// /debug/pprof over HTTP.
func NewMonitorServer() *MonitorServer { return monitor.New() }

// WithPublisher streams run telemetry — periodic metric snapshots plus
// lifecycle events — into an external sink. Publishing is read-only: the
// snapshot tick consumes no randomness and leaves results byte-identical.
func WithPublisher(p TelemetryPublisher) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.Publisher = p })
}

// WithPublishEvery sets the virtual-time cadence between published metric
// snapshots (default scenario.DefaultPublishEvery, 5s of simulated time).
func WithPublishEvery(d time.Duration) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.PublishEvery = d })
}

// WithRunLabel names the run on the monitor; defaults to a
// "<venue>/<attack>/slot<N>" summary when empty.
func WithRunLabel(label string) RunOption {
	return runOptionFunc(func(o *runOptions) { o.cfg.RunLabel = label })
}

// WithMonitorServer publishes the run into an existing monitor server.
func WithMonitorServer(s *MonitorServer) RunOption { return WithPublisher(s) }

// sharedMonitors holds one started monitor server per listen address so
// repeated WithMonitor calls — and concurrent runs — share a single
// listener instead of fighting over the port.
var (
	sharedMonitorsMu sync.Mutex
	sharedMonitors   = map[string]*MonitorServer{}
)

// SharedMonitor returns the process-wide monitor server listening on addr,
// starting one on first use. The second return is the bound address, which
// differs from addr when addr asks for an ephemeral port (":0").
func SharedMonitor(addr string) (*MonitorServer, string, error) {
	sharedMonitorsMu.Lock()
	defer sharedMonitorsMu.Unlock()
	if s, ok := sharedMonitors[addr]; ok {
		return s, s.Addr(), nil
	}
	s := monitor.New()
	bound, err := s.Start(addr)
	if err != nil {
		return nil, "", fmt.Errorf("monitor: %w", err)
	}
	sharedMonitors[addr] = s
	return s, bound, nil
}

// WithMonitor starts (once per address, process-wide) an HTTP monitor
// server on addr and publishes the run into it. The server stays up after
// the run finishes so dashboards can keep scraping; it serves Prometheus
// exposition on /metrics, run JSON on /runs, live events on /events (SSE)
// and profiling under /debug/pprof.
func WithMonitor(addr string) (RunOption, error) {
	s, _, err := SharedMonitor(addr)
	if err != nil {
		return nil, err
	}
	return WithMonitorServer(s), nil
}

// baseRunConfig is the shared per-run configuration every entry point —
// Run, RunContext, RunCampaign — starts from: the world handles, the world
// seed, and the paper's calibrated defaults.
func (w *World) baseRunConfig() scenario.Config {
	return scenario.Config{
		City:                 w.City,
		HeatMap:              w.Heat,
		PNL:                  w.PNL,
		WiGLE:                w.WiGLE,
		DirectProberFraction: 0.15,
		Seed:                 w.seed,
	}
}

// ApplyOptions applies RunOptions to a raw run configuration — the bridge
// between the functional-option surface and the declarative
// RunSpec.Configure hooks of campaigns.
func ApplyOptions(cfg *RunConfig, opts ...RunOption) {
	o := runOptions{cfg: *cfg}
	for _, opt := range opts {
		opt.applyRun(&o)
	}
	*cfg = o.cfg
}

// Run deploys the chosen attacker at the venue for one test: the venue's
// slot-th hour (slot 0 is 8am–9am) truncated to the given duration. The
// attacker's database is re-initialised for every run, as in the paper.
// It is RunContext with a background context.
func (w *World) Run(venue Venue, kind AttackKind, slot int, duration time.Duration, opts ...RunOption) (*Result, error) {
	return w.RunContext(context.Background(), venue, kind, slot, duration, opts...)
}

// RunContext is the primary run entry point: Run, plus cancellation. The
// context is polled inside the simulation event loop, so cancelling stops
// a mid-flight run promptly.
//
// Cancellation semantics: when ctx is cancelled mid-run, RunContext
// returns the partial Result — outcomes, tally, victims and observability
// attachments for the virtual time actually simulated, with
// Result.Duration truncated to that time — together with a non-nil error
// for which errors.Is(err, ctx.Err()) holds. Errors detected before the
// simulation starts (bad slot, bad fractions) return a nil Result.
func (w *World) RunContext(ctx context.Context, venue Venue, kind AttackKind, slot int, duration time.Duration, opts ...RunOption) (*Result, error) {
	cfg := w.baseRunConfig()
	cfg.Venue = venue
	cfg.Attack = kind
	ApplyOptions(&cfg, opts...)
	res, err := scenario.RunContext(ctx, cfg, slot, duration)
	if err != nil {
		return res, fmt.Errorf("cityhunter: %w", err)
	}
	return res, nil
}

// RunCampaign fans the given run specs out over a bounded worker pool and
// aggregates their results deterministically: per-spec seeds derive from
// the spec (or the world seed and spec index when unset), results and the
// mean/CI aggregate land in spec order, and the numbers are byte-identical
// at any worker count. Progress streams through pool.OnProgress as runs
// finish.
//
// Cancelling ctx stops dispatch, halts in-flight runs promptly (their
// partial results are kept alongside their context errors), and returns
// the completed runs together with ctx.Err(). A hard spec failure cancels
// the rest of the campaign the same way and is reported with its spec
// index and name.
func (w *World) RunCampaign(ctx context.Context, specs []RunSpec, pool CampaignPool) (*CampaignResult, error) {
	c := &campaign.Campaign{
		Base:  w.baseRunConfig(),
		Specs: specs,
		Pool:  pool,
	}
	return c.Run(ctx)
}

// deployOptions collects the functional options of DeploySites.
type deployOptions struct {
	dcfg scenario.DeploymentConfig
}

// DeployOption customises a multi-site deployment.
type DeployOption interface{ applyDeploy(*deployOptions) }

type deployOptionFunc func(*deployOptions)

func (f deployOptionFunc) applyDeploy(o *deployOptions) { f(o) }

// WithKnowledgePlane selects how the sites share the City-Hunter database
// (default Isolated — N independent copies of the paper's deployment).
func WithKnowledgePlane(plane KnowledgePlane) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.dcfg.Knowledge = plane })
}

// WithSyncPeriod sets the PeriodicSync exchange period (default 1 minute).
func WithSyncPeriod(d time.Duration) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.dcfg.SyncEvery = d })
}

// WithRoaming makes phones finishing a dwell walk to another site with the
// given probability instead of leaving the city (default 0).
func WithRoaming(fraction float64) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.dcfg.RoamFraction = fraction })
}

// WithTransit overrides the inter-site walking model roaming phones use.
func WithTransit(m TransitModel) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.dcfg.Transit = m })
}

// WithRunOptions applies single-run options to the deployment's base
// configuration — seeds, population fractions, deauth, observability.
func WithRunOptions(opts ...RunOption) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { ApplyOptions(&o.dcfg.Base, opts...) })
}

// WithPartitions selects the conservative parallel execution engine: each
// site partition runs its own event loop on its own goroutine, advancing
// in lookahead-bounded windows with cross-partition events (roaming
// transits, knowledge syncs, level-of-detail handoffs) applied at
// deterministic barriers. Results are identical at any partition count
// and any GOMAXPROCS, but follow the partitioned semantics — per-site RNG
// streams and radio shards — so they are not byte-comparable with the
// default serialized engine (see DESIGN §5.13). Pass AutoPartitions for
// one partition per site, or a positive count (clamped to the site
// count); 0 keeps the classic engine.
func WithPartitions(n int) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.dcfg.Partitions = n })
}

// farField returns the deployment's far-field config, creating it on first
// use so the level-of-detail options compose in any order.
func (o *deployOptions) farField() *FarFieldConfig {
	if o.dcfg.FarField == nil {
		o.dcfg.FarField = &scenario.FarFieldConfig{}
	}
	return o.dcfg.FarField
}

// WithPopulationScale adds a far-field population of n statistical
// pedestrians roaming the whole city. They cost almost nothing until their
// routes cross a site's promotion boundary, where they are promoted to full
// client fidelity (and demoted again on exit) — 100k–1M pedestrians is the
// design envelope. Without further options they route between districts
// derived from the deployed sites; see WithCityRoutes and WithFarField.
func WithPopulationScale(n int) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.farField().Pedestrians = n })
}

// WithLODRadius sets the promotion boundary radius around each site
// (default 1.25× the largest site radio range, so phones exist slightly
// before the attacker can hear them).
func WithLODRadius(metres float64) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.farField().Radius = metres })
}

// WithCityRoutes replaces the far-field routing destinations — typically
// World.City.RouteStops(), which maps every citygen district onto a stop
// weighted by its attractiveness.
func WithCityRoutes(stops []RouteStop) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { o.farField().Stops = stops })
}

// WithFarField replaces the whole far-field configuration for callers that
// need the long tail of knobs (entry area, itinerary model, spawn seed).
func WithFarField(cfg FarFieldConfig) DeployOption {
	return deployOptionFunc(func(o *deployOptions) { c := cfg; o.dcfg.FarField = &c })
}

// DeploySites runs one attacker of the chosen kind at each site for the
// slot's test — the city-scale generalisation of Run. All sites share one
// radio medium and one virtual clock; phones may roam between them (see
// WithRoaming) and the attackers may share knowledge (see
// WithKnowledgePlane). It is DeploySitesContext with a background context.
func (w *World) DeploySites(sites []Venue, kind AttackKind, slot int, duration time.Duration, opts ...DeployOption) (*DeploymentResult, error) {
	return w.DeploySitesContext(context.Background(), sites, kind, slot, duration, opts...)
}

// DeploySitesContext is DeploySites plus cancellation, with RunContext's
// semantics: a mid-run cancel returns the partial DeploymentResult
// together with a non-nil error wrapping ctx.Err().
func (w *World) DeploySitesContext(ctx context.Context, sites []Venue, kind AttackKind, slot int, duration time.Duration, opts ...DeployOption) (*DeploymentResult, error) {
	o := deployOptions{dcfg: scenario.DeploymentConfig{Sites: sites}}
	o.dcfg.Base = w.baseRunConfig()
	o.dcfg.Base.Attack = kind
	for _, opt := range opts {
		opt.applyDeploy(&o)
	}
	res, err := scenario.RunDeploymentContext(ctx, o.dcfg, slot, duration)
	if err != nil {
		return res, fmt.Errorf("cityhunter: %w", err)
	}
	return res, nil
}

// RunDeployment executes a deployment plan — typically one loaded with
// LoadDeployment — against this world: the plan's Base is replaced by the
// world's base configuration carrying the given attack kind and run
// options, then the deployment runs with DeploySitesContext's semantics.
func (w *World) RunDeployment(ctx context.Context, dcfg DeploymentConfig, kind AttackKind, slot int, duration time.Duration, opts ...RunOption) (*DeploymentResult, error) {
	base := w.baseRunConfig()
	base.Attack = kind
	ApplyOptions(&base, opts...)
	dcfg.Base = base
	res, err := scenario.RunDeploymentContext(ctx, dcfg, slot, duration)
	if err != nil {
		return res, fmt.Errorf("cityhunter: %w", err)
	}
	return res, nil
}

// Campaign server, re-exported: a long-running HTTP/JSON job API that
// accepts plan envelopes, runs them on a shared bounded campaign pool,
// streams progress over SSE, and persists results in a content-addressed
// store so identical resubmission is a cache hit and cancelled campaigns
// resume from their completed specs. See cmd/cityhunter-server.
type (
	// CampaignServer is the job server. Build one with NewCampaignServer
	// (or serve.New for full control over world construction).
	CampaignServer = serve.Server
	// CampaignServerConfig configures a CampaignServer.
	CampaignServerConfig = serve.Config
	// JobStatus is the JSON shape of a job on the API.
	JobStatus = serve.JobStatus
	// JobResult is a job's final durable result document.
	JobResult = serve.Result
)

// NewCampaignServer builds a job server whose runs execute against worlds
// generated on demand: the first job with a given seed pays the world
// generation cost, later jobs with the same seed share it. cfg.BaseConfig
// may be left nil (it is filled with that default); cfg.StoreDir is
// required.
func NewCampaignServer(cfg CampaignServerConfig) (*CampaignServer, error) {
	if cfg.BaseConfig == nil {
		var mu sync.Mutex
		worlds := map[int64]*World{}
		cfg.BaseConfig = func(seed int64) (scenario.Config, error) {
			mu.Lock()
			defer mu.Unlock()
			w, ok := worlds[seed]
			if !ok {
				var err error
				w, err = NewWorld(WithSeed(seed))
				if err != nil {
					return scenario.Config{}, err
				}
				worlds[seed] = w
			}
			return w.baseRunConfig(), nil
		}
	}
	return serve.New(cfg)
}
