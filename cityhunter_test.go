package cityhunter_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cityhunter"
)

var (
	apiWorldOnce sync.Once
	apiWorldVal  *cityhunter.World
	apiWorldErr  error
)

// apiWorld shares one default world across the API tests.
func apiWorld(t *testing.T) *cityhunter.World {
	t.Helper()
	apiWorldOnce.Do(func() {
		apiWorldVal, apiWorldErr = cityhunter.NewWorld(cityhunter.WithSeed(3))
	})
	if apiWorldErr != nil {
		t.Fatalf("NewWorld: %v", apiWorldErr)
	}
	return apiWorldVal
}

func TestNewWorldDefault(t *testing.T) {
	w := apiWorld(t)
	if w.City == nil || w.Heat == nil || w.PNL == nil || w.WiGLE == nil {
		t.Fatal("world has nil components")
	}
	if w.Seed() != 3 {
		t.Errorf("Seed = %d", w.Seed())
	}
	if w.WiGLE.Len() >= w.City.DB.Len() {
		t.Errorf("WiGLE snapshot (%d) should be smaller than the city DB (%d)",
			w.WiGLE.Len(), w.City.DB.Len())
	}
}

func TestNewWorldPerfectWiGLE(t *testing.T) {
	w, err := cityhunter.NewWorld(cityhunter.WithSeed(3), cityhunter.WithPerfectWiGLE())
	if err != nil {
		t.Fatal(err)
	}
	if w.WiGLE.Len() != w.City.DB.Len() {
		t.Errorf("perfect WiGLE (%d) != city DB (%d)", w.WiGLE.Len(), w.City.DB.Len())
	}
}

func TestNewWorldBadOptions(t *testing.T) {
	if _, err := cityhunter.NewWorld(cityhunter.WithWiGLEGaps(2, 0)); err == nil {
		t.Error("bad gap probability accepted")
	}
	if _, err := cityhunter.NewWorld(cityhunter.WithHeatCellSize(-1)); err == nil {
		t.Error("negative heat cell accepted")
	}
	bad := cityhunter.PNLConfig{CarrierFraction: 5}
	if _, err := cityhunter.NewWorld(cityhunter.WithPNLConfig(bad)); err == nil {
		t.Error("bad PNL config accepted")
	}
}

func TestRunBasic(t *testing.T) {
	w := apiWorld(t)
	res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 5*time.Minute, cityhunter.WithArrivalScale(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total == 0 {
		t.Error("no clients heard")
	}
	if res.Engine == nil {
		t.Error("no engine exposed")
	}
	if res.SlotLabel != "12pm-1pm" {
		t.Errorf("SlotLabel = %q", res.SlotLabel)
	}
	if !strings.Contains(res.Attack, "City-Hunter") {
		t.Errorf("Attack = %q", res.Attack)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	w := apiWorld(t)
	run := func() *cityhunter.Result {
		res, err := w.Run(cityhunter.PassageVenue(), cityhunter.CityHunter,
			cityhunter.MorningRushSlot, 4*time.Minute,
			cityhunter.WithArrivalScale(0.4), cityhunter.WithRunSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Tally != b.Tally {
		t.Errorf("same run seed, different tallies:\n%v\n%v", a.Tally, b.Tally)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	w := apiWorld(t)
	run := func(seed int64) cityhunter.Tally {
		res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 5*time.Minute,
			cityhunter.WithArrivalScale(0.4), cityhunter.WithRunSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Tally
	}
	if run(1) == run(2) {
		t.Error("different run seeds produced identical tallies (suspicious)")
	}
}

func TestRunInvalidArgs(t *testing.T) {
	w := apiWorld(t)
	if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter, 99, time.Minute); err == nil {
		t.Error("bad slot accepted")
	}
	if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter, 0, -time.Minute); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.AttackKind(99), 0, time.Minute); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestRunWithDeauthOption(t *testing.T) {
	w := apiWorld(t)
	res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 5*time.Minute,
		cityhunter.WithArrivalScale(0.4), cityhunter.WithDeauth(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.DeauthsSent == 0 {
		t.Error("deauth extension sent nothing")
	}
}

func TestRunWithCoreConfig(t *testing.T) {
	w := apiWorld(t)
	cfg := cityhunter.CoreConfig{} // zero config is invalid
	if _, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		0, time.Minute, cityhunter.WithCoreConfig(cfg)); err == nil {
		t.Error("invalid core config accepted")
	}
}

func TestAllVenuesRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every venue")
	}
	w := apiWorld(t)
	for _, venue := range cityhunter.AllVenues() {
		res, err := w.Run(venue, cityhunter.CityHunter, 0, 3*time.Minute,
			cityhunter.WithArrivalScale(0.3))
		if err != nil {
			t.Fatalf("%s: %v", venue.Name, err)
		}
		if res.Venue != venue.Name {
			t.Errorf("result venue = %q", res.Venue)
		}
	}
}

func TestWorldSeedsDiffer(t *testing.T) {
	a, err := cityhunter.NewWorld(cityhunter.WithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cityhunter.NewWorld(cityhunter.WithSeed(101))
	if err != nil {
		t.Fatal(err)
	}
	ra := a.City.DB.Records()
	rb := b.City.DB.Records()
	same := 0
	for i := 0; i < 100 && i < len(ra) && i < len(rb); i++ {
		if ra[i].Pos == rb[i].Pos {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different world seeds share %d/100 AP positions", same)
	}
}

func TestSparseCityLowersHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("two worlds")
	}
	dense := apiWorld(t)
	sparseCfg := cityhunter.SparseCityConfig(9)
	sparse, err := cityhunter.NewWorld(cityhunter.WithSeed(9), cityhunter.WithCityConfig(sparseCfg))
	if err != nil {
		t.Fatal(err)
	}
	run := func(w *cityhunter.World) cityhunter.Tally {
		res, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 10*time.Minute, cityhunter.WithArrivalScale(0.6))
		if err != nil {
			t.Fatal(err)
		}
		return res.Tally
	}
	d, s := run(dense), run(sparse)
	t.Logf("dense  %v", d)
	t.Logf("sparse %v", s)
	if s.BroadcastHitRate() >= d.BroadcastHitRate() {
		t.Errorf("sparse h_b %.3f not below dense %.3f: a thin public-WiFi ecosystem should starve the seeding",
			s.BroadcastHitRate(), d.BroadcastHitRate())
	}
}

// TestRunContextCancellation pins the documented contract: a cancelled
// context yields a partial Result (the accounting up to the stop point)
// together with an error wrapping ctx.Err().
func TestRunContextCancellation(t *testing.T) {
	w := apiWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 10*time.Minute, cityhunter.WithArrivalScale(0.4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if res.Duration >= 10*time.Minute {
		t.Errorf("partial result claims full duration %v", res.Duration)
	}
}

// TestRunContextMatchesRun: Run is a plain wrapper, so both entry points
// must agree byte for byte at the same seed.
func TestRunContextMatchesRun(t *testing.T) {
	w := apiWorld(t)
	opts := []cityhunter.RunOption{cityhunter.WithArrivalScale(0.4), cityhunter.WithRunSeed(9)}
	a, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 4*time.Minute, opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.RunContext(context.Background(), cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 4*time.Minute, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally {
		t.Errorf("Run and RunContext diverged:\n%v\n%v", a.Tally, b.Tally)
	}
}
