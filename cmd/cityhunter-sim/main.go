// Command cityhunter-sim runs one attacker deployment and prints the
// result table, the way the paper reports a single field test.
//
// Usage:
//
//	cityhunter-sim [flags]
//
//	-venue    passage|canteen|mall|station   (default canteen)
//	-attack   karma|mana|prelim|cityhunter   (default cityhunter)
//	-slot     hour slot 0..11, 0 = 8am-9am   (default 4 = 12pm-1pm)
//	-minutes  run length                     (default 30)
//	-seed     world seed                     (default 1)
//	-deauth   arm the deauthentication extension
//	-preconnected  fraction of phones arriving connected (default 0)
//	-breakdown     print the Fig.6-style hit breakdown
//	-metrics       print the deterministic metrics dump and journal tail
//	-trace-out F   write a Chrome/Perfetto trace-event JSON file to F
//
// Campaign mode: -campaign-file F loads a JSON campaign spec file (see
// cityhunter.SaveCampaign/LoadCampaign) and runs every declared deployment
// over the campaign worker pool instead of the single run the flags above
// describe; -parallel bounds the pool. Ctrl-C cancels mid-campaign and the
// completed runs are still reported.
//
// Deployment mode: -deployment F loads a JSON multi-site deployment plan
// (see cityhunter.SaveDeployment/LoadDeployment: sites, knowledge plane,
// roaming model) and runs one attacker per site on a single shared radio
// medium, printing per-site rows and the pooled tally. -attack, -slot,
// -minutes, -seed and the population flags apply; the single-run output
// flags (-pcap, -trace-out, -breakdown) do not. -population without a
// -deployment plan hunts the default city-scale trio (station, canteen,
// mall) with that many far-field pedestrians. -partitions 0 runs the
// deployment on the conservative parallel engine with one partition per
// site (-partitions N for an explicit count); the default -1 keeps the
// classic serialized engine unless the plan file itself asks for
// partitions.
//
// Live monitoring: -monitor ADDR serves read-only telemetry over HTTP for
// the lifetime of the process — Prometheus exposition on /metrics, run
// status JSON on /runs, a live event stream on /events (SSE) and pprof
// under /debug/pprof. Monitoring never perturbs the simulation: results
// are byte-identical with and without it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"cityhunter"
	"cityhunter/internal/prof"
	"cityhunter/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cityhunter-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cityhunter-sim", flag.ContinueOnError)
	var (
		venueName    = fs.String("venue", "canteen", "passage|canteen|mall|station")
		attackName   = fs.String("attack", "cityhunter", "karma|mana|prelim|cityhunter|known-beacons")
		slot         = fs.Int("slot", 4, "hour slot 0..11 (0 = 8am-9am)")
		minutes      = fs.Int("minutes", 30, "run length in minutes")
		seed         = fs.Int64("seed", 1, "world seed")
		deauth       = fs.Bool("deauth", false, "arm the deauthentication extension")
		preconnected = fs.Float64("preconnected", 0, "fraction of phones arriving connected to the venue AP")
		breakdown    = fs.Bool("breakdown", false, "print the hit breakdown (City-Hunter only)")
		pcapPath     = fs.String("pcap", "", "capture every frame at the venue into this pcap file")
		venueFile    = fs.String("venue-file", "", "load the venue from this JSON file instead of -venue")
		loss         = fs.Float64("loss", 0, "independent frame-loss probability (failure injection)")
		canary       = fs.Float64("canary", 0, "fraction of phones running the canary-probe detector")
		randomizeMAC = fs.Float64("randomize-macs", 0, "fraction of phones rotating their probe MAC per scan")
		sentinel     = fs.Bool("sentinel", false, "deploy the passive evil-twin sentinel and report its findings")
		metrics      = fs.Bool("metrics", false, "print the metrics dump and flight-recorder tail after the run")
		traceOut     = fs.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file (open in chrome://tracing)")
		campaignFile = fs.String("campaign-file", "", "run the campaign declared in this JSON spec file instead of a single deployment")
		deployFile   = fs.String("deployment", "", "run the multi-site deployment plan in this JSON file instead of a single venue")
		parallel     = fs.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = serial)")
		population   = fs.Int("population", 0, "far-field pedestrians roaming the city in a -deployment run (level-of-detail tier)")
		partitions   = fs.Int("partitions", -1, "conservative parallel deployment engine: 0 = one partition per site, N = explicit count, -1 = serial engine (or the plan's setting)")
		lodRadius    = fs.Float64("lod-radius", 0, "promotion boundary radius in metres around each site (0 = 1.25x the largest radio range)")
		cpuProfile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		monitorAddr  = fs.String("monitor", "", "serve live telemetry on this address while running (/metrics, /runs, /events, /debug/pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "cityhunter-sim:", perr)
		}
	}()

	var mon *cityhunter.MonitorServer
	if *monitorAddr != "" {
		var bound string
		mon, bound, err = cityhunter.SharedMonitor(*monitorAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "monitor listening on http://%s — try /metrics, /runs, /events (SSE), /debug/pprof\n", bound)
	}

	if *campaignFile != "" {
		return runCampaign(ctx, out, *campaignFile, *seed, *parallel, mon)
	}

	if *deployFile != "" || *population > 0 {
		kind, err := attackByName(*attackName)
		if err != nil {
			return err
		}
		var opts []cityhunter.RunOption
		if *loss > 0 {
			opts = append(opts, cityhunter.WithFrameLoss(*loss))
		}
		if *canary > 0 {
			opts = append(opts, cityhunter.WithCanaryClients(*canary))
		}
		if *randomizeMAC > 0 {
			opts = append(opts, cityhunter.WithRandomizedMACs(*randomizeMAC))
		}
		if *deauth {
			opts = append(opts, cityhunter.WithDeauth(*preconnected))
		} else if *preconnected > 0 {
			opts = append(opts, cityhunter.WithPreconnected(*preconnected))
		}
		if mon != nil {
			opts = append(opts, cityhunter.WithMonitorServer(mon))
		}
		parts, err := partitionsFlagValue(*partitions)
		if err != nil {
			return err
		}
		if *deployFile != "" {
			return runDeployment(ctx, out, *deployFile, kind, *slot, *minutes, *seed,
				*population, *lodRadius, parts, opts...)
		}
		// -population without a -deployment plan: hunt the default
		// city-scale trio (station, canteen, mall) in a synthetic city.
		return runCityScale(ctx, out, kind, *slot, *minutes, *seed,
			*population, *lodRadius, parts, opts...)
	}

	var venue cityhunter.Venue
	if *venueFile != "" {
		f, err := os.Open(*venueFile)
		if err != nil {
			return err
		}
		venue, err = cityhunter.LoadVenue(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		venue, err = venueByName(*venueName)
		if err != nil {
			return err
		}
	}
	kind, err := attackByName(*attackName)
	if err != nil {
		return err
	}

	world, err := cityhunter.NewWorld(cityhunter.WithSeed(*seed))
	if err != nil {
		return err
	}

	var opts []cityhunter.RunOption
	if *pcapPath != "" {
		opts = append(opts, cityhunter.WithTrace())
	}
	if *loss > 0 {
		opts = append(opts, cityhunter.WithFrameLoss(*loss))
	}
	if *canary > 0 {
		opts = append(opts, cityhunter.WithCanaryClients(*canary))
	}
	if *randomizeMAC > 0 {
		opts = append(opts, cityhunter.WithRandomizedMACs(*randomizeMAC))
	}
	if *sentinel {
		opts = append(opts, cityhunter.WithSentinel())
	}
	if *deauth {
		opts = append(opts, cityhunter.WithDeauth(*preconnected))
	} else if *preconnected > 0 {
		opts = append(opts, cityhunter.WithPreconnected(*preconnected))
	}
	if *metrics {
		opts = append(opts, cityhunter.WithMetrics(), cityhunter.WithFlightRecorder(0))
	}
	if *traceOut != "" {
		opts = append(opts, cityhunter.WithPerfettoTrace())
	}
	if mon != nil {
		opts = append(opts, cityhunter.WithMonitorServer(mon))
	}

	res, err := world.Run(venue, kind, *slot, time.Duration(*minutes)*time.Minute, opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%s at the %s, %s, %d minutes\n", res.Attack, res.Venue, res.SlotLabel, *minutes)
	fmt.Fprintln(out, res.Tally)
	if res.Report.DeauthsSent > 0 {
		fmt.Fprintf(out, "spoofed deauthentications sent: %d\n", res.Report.DeauthsSent)
	}
	if *pcapPath != "" && res.Trace != nil {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		err = res.Trace.WritePcap(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d captured frames to %s (dropped %d beyond the cap)\n",
			res.Trace.Len(), *pcapPath, res.Trace.Dropped)
		a := trace.Analyze(res.Trace.Entries())
		fmt.Fprintf(out, "capture: %d frames, %d probers (%d direct), probe interval p50=%v p90=%v\n",
			a.Frames, a.Probers, a.DirectProbers,
			a.ProbeIntervalP50.Truncate(time.Millisecond),
			a.ProbeIntervalP90.Truncate(time.Millisecond))
	}
	if res.CanaryDetections > 0 {
		fmt.Fprintf(out, "canary unmaskings by defended phones: %d\n", res.CanaryDetections)
	}
	if *sentinel && res.Sentinel != nil {
		if findings := res.Sentinel.Findings(); len(findings) > 0 {
			f := findings[0]
			fmt.Fprintf(out, "sentinel flagged %v after %v (%d lure SSIDs)\n",
				f.BSSID, f.FlaggedAt.Truncate(time.Millisecond), res.Sentinel.SSIDCount(f.BSSID))
		} else {
			fmt.Fprintln(out, "sentinel flagged nothing")
		}
	}
	if *breakdown && res.Engine != nil {
		b := res.Breakdown()
		fmt.Fprintf(out, "hitting SSIDs: %d from WiGLE, %d harvested, %d carrier\n",
			b.FromWiGLE, b.FromDirect, b.FromCarrier)
		fmt.Fprintf(out, "served by: popularity side %d, freshness side %d\n",
			b.FromPopularity, b.FromFreshness)
	}
	if *traceOut != "" && res.Spans != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		err = res.Spans.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events (%s) to %s — open in chrome://tracing or ui.perfetto.dev\n",
			res.Spans.Len(), strings.Join(res.Spans.Categories(), ", "), *traceOut)
	}
	if *metrics && res.Metrics != nil {
		fmt.Fprintln(out, "--- metrics ---")
		if err := res.Metrics.WriteText(out); err != nil {
			return err
		}
		if res.Journal != nil {
			events := res.Journal.Events()
			fmt.Fprintf(out, "--- flight recorder: %d events (%d overwritten) ---\n",
				res.Journal.Len(), res.Journal.Dropped())
			tail := events
			if len(tail) > 10 {
				tail = tail[len(tail)-10:]
			}
			for _, e := range tail {
				fmt.Fprintf(out, "%12s %-12s %-20s %s\n",
					e.At.Truncate(time.Millisecond), e.Type, e.Actor, e.Detail)
			}
		}
	}
	return nil
}

// runCampaign loads a campaign spec file and fans its runs over the worker
// pool. Per-run rows print in spec order once everything (that was allowed
// to) finished, so output is identical at any -parallel value; progress goes
// to stderr. On cancellation the completed runs still print before the
// error is returned.
func runCampaign(ctx context.Context, out io.Writer, path string, seed int64, parallel int, mon *cityhunter.MonitorServer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	specs, err := cityhunter.LoadCampaign(f)
	f.Close()
	if err != nil {
		return err
	}

	world, err := cityhunter.NewWorld(cityhunter.WithSeed(seed))
	if err != nil {
		return err
	}
	pool := cityhunter.CampaignPool{
		Workers: parallel,
		OnProgress: func(p cityhunter.CampaignProgress) {
			status := "done"
			if p.Err != nil {
				status = p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %s\n", p.Done, p.Total, p.Name, status)
		},
	}
	if mon != nil {
		pool.Publisher = mon
		pool.Label = "campaign " + path
	}

	res, runErr := world.RunCampaign(ctx, specs, pool)
	fmt.Fprintf(out, "campaign %s: %d runs, %d completed\n", path, len(specs), res.Completed)
	for i, spec := range specs {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("run %d", i)
		}
		if res.Errs[i] != nil {
			fmt.Fprintf(out, "%-24s %s\n", name, res.Errs[i])
			continue
		}
		r := res.Results[i]
		fmt.Fprintf(out, "%-24s %s at the %s, %s: %v\n",
			name, r.Attack, r.Venue, r.SlotLabel, r.Tally)
	}
	fmt.Fprintln(out, res.Aggregate.String())
	return runErr
}

// runDeployment loads a multi-site deployment plan and runs it end to end on
// one shared medium, printing the per-site rows followed by the pooled tally
// that the plan's knowledge plane produced.
func runDeployment(ctx context.Context, out io.Writer, path string, kind cityhunter.AttackKind,
	slot, minutes int, seed int64, population int, lodRadius float64, partitions int,
	opts ...cityhunter.RunOption) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	dcfg, err := cityhunter.LoadDeployment(f)
	f.Close()
	if err != nil {
		return err
	}
	if partitions != 0 {
		// The flag overrides whatever the plan file carries; 0 (the
		// mapped form of -partitions -1) keeps the plan's setting.
		dcfg.Partitions = partitions
	}

	world, err := cityhunter.NewWorld(cityhunter.WithSeed(seed))
	if err != nil {
		return err
	}
	if population > 0 {
		dcfg.FarField = &cityhunter.FarFieldConfig{
			Pedestrians: population,
			Radius:      lodRadius,
			Stops:       world.City.RouteStops(),
		}
	}
	res, err := world.RunDeployment(ctx, dcfg, kind, slot, time.Duration(minutes)*time.Minute, opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "deployment %s: %d sites, %s knowledge plane, %d roams\n",
		path, len(res.Sites), res.Knowledge, res.Roams)
	for _, r := range res.Sites {
		fmt.Fprintf(out, "%-24s %s, %s: %v\n", r.Venue, r.Attack, r.SlotLabel, r.Tally)
	}
	fmt.Fprintf(out, "pooled: %v\n", res.Tally)
	if ff := res.FarField; ff != nil {
		fmt.Fprintf(out, "far field: %d pedestrians, %d promoted (%d promotions, %d demotions, peak %d), %v\n",
			ff.Pedestrians, ff.Promoted, ff.Promotions, ff.Demotions, ff.PeakPromoted, ff.Tally)
		for i, s := range ff.Sites {
			fmt.Fprintf(out, "  site %-18s %d promotions, %d hits\n", res.Sites[i].Venue+":", s.Promotions, s.Hits)
		}
	}
	return nil
}

// runCityScale is the no-plan-file deployment path: -population with no
// -deployment hunts the default city-scale trio (station, canteen, mall)
// embedded in the synthetic dozen-district city, mirroring the
// examples/city-scale walkthrough so a one-liner exercises the
// level-of-detail tier (and, with -monitor, lights up the telemetry plane).
func runCityScale(ctx context.Context, out io.Writer, kind cityhunter.AttackKind,
	slot, minutes int, seed int64, population int, lodRadius float64, partitions int,
	opts ...cityhunter.RunOption) error {
	world, err := cityhunter.NewWorld(
		cityhunter.WithSeed(seed),
		cityhunter.WithCityConfig(cityhunter.CityScaleCityConfig(seed)),
	)
	if err != nil {
		return err
	}
	sites := []cityhunter.Venue{
		cityhunter.StationVenue(),
		cityhunter.CanteenVenue(),
		cityhunter.MallVenue(),
	}
	if lodRadius == 0 {
		lodRadius = 80
	}
	stops := world.City.RouteStops()
	fmt.Fprintf(out, "city-scale deployment: %d sites, %d districts, %d far-field pedestrians\n",
		len(sites), len(stops), population)

	res, err := world.DeploySitesContext(ctx, sites, kind, slot,
		time.Duration(minutes)*time.Minute,
		cityhunter.WithPopulationScale(population),
		cityhunter.WithLODRadius(lodRadius),
		cityhunter.WithCityRoutes(stops),
		cityhunter.WithPartitions(partitions),
		cityhunter.WithRunOptions(opts...))
	if err != nil {
		return err
	}

	for _, r := range res.Sites {
		fmt.Fprintf(out, "%-24s %s, %s: %v\n", r.Venue, r.Attack, r.SlotLabel, r.Tally)
	}
	fmt.Fprintf(out, "pooled: %v\n", res.Tally)
	if ff := res.FarField; ff != nil {
		fmt.Fprintf(out, "far field: %d pedestrians, %d promoted (%d promotions, %d demotions, peak %d), %v\n",
			ff.Pedestrians, ff.Promoted, ff.Promotions, ff.Demotions, ff.PeakPromoted, ff.Tally)
		for i, s := range ff.Sites {
			fmt.Fprintf(out, "  site %-18s %d promotions, %d hits\n", res.Sites[i].Venue+":", s.Promotions, s.Hits)
		}
	}
	return nil
}

// partitionsFlagValue maps the -partitions flag onto the DeploymentConfig
// field. The flag default -1 means "don't override" (classic engine, or
// whatever the plan file says) and maps to 0; flag 0 asks for one partition
// per site and maps to AutoPartitions; a positive flag is an explicit count.
func partitionsFlagValue(flag int) (int, error) {
	switch {
	case flag < -1:
		return 0, fmt.Errorf("-partitions %d invalid: use -1 (serial), 0 (one per site), or a positive count", flag)
	case flag == -1:
		return 0, nil
	case flag == 0:
		return cityhunter.AutoPartitions, nil
	default:
		return flag, nil
	}
}

func venueByName(name string) (cityhunter.Venue, error) {
	switch strings.ToLower(name) {
	case "passage", "subway":
		return cityhunter.PassageVenue(), nil
	case "canteen":
		return cityhunter.CanteenVenue(), nil
	case "mall", "shopping":
		return cityhunter.MallVenue(), nil
	case "station", "railway":
		return cityhunter.StationVenue(), nil
	default:
		return cityhunter.Venue{}, fmt.Errorf("unknown venue %q", name)
	}
}

func attackByName(name string) (cityhunter.AttackKind, error) {
	switch strings.ToLower(name) {
	case "karma":
		return cityhunter.KARMA, nil
	case "mana":
		return cityhunter.MANA, nil
	case "prelim", "preliminary":
		return cityhunter.CityHunterPreliminary, nil
	case "cityhunter", "city-hunter", "full":
		return cityhunter.CityHunter, nil
	case "beacons", "known-beacons":
		return cityhunter.KnownBeacons, nil
	default:
		return 0, fmt.Errorf("unknown attack %q", name)
	}
}
