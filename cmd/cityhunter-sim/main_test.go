package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cityhunter"
)

// TestRunMetricsAndTrace drives the acceptance path: one invocation with
// -metrics -trace-out must print a metrics dump covering the sim, medium,
// and engine layers, and write parseable Chrome trace-event JSON with the
// client, scan, and attacker span categories.
func TestRunMetricsAndTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-minutes", "2", "-seed", "7", "-metrics", "-trace-out", traceFile}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	text := out.String()
	for _, want := range []string{
		"--- metrics ---",
		"sim_events_executed",
		"sim_queue_depth_hwm",
		"medium_frames_sent{subtype=probe-request}",
		"medium_frames_delivered{subtype=probe-response}",
		"core_broadcast_replies",
		"core_batch_size histogram",
		"attack_probe_responses_sent",
		"scenario_virtual_seconds 120",
		"--- flight recorder:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, text)
		}
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	cats := make(map[string]int)
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" || e.Ph == "i" {
			cats[e.Cat]++
			if e.PID != 1 || e.TID == 0 {
				t.Errorf("event %s has pid=%d tid=%d, want pid=1 tid>0", e.Name, e.PID, e.TID)
			}
		}
	}
	for _, cat := range []string{"client", "scan", "attacker"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q events (cats: %v)", cat, cats)
		}
	}
}

// TestRunDeterministicMetrics runs the same seed twice and requires
// byte-identical output — the determinism guarantee the metrics layer
// makes for reproducing paper figures.
func TestRunDeterministicMetrics(t *testing.T) {
	invoke := func() string {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-minutes", "2", "-seed", "3", "-metrics"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	a, b := invoke(), invoke()
	if a != b {
		t.Errorf("same-seed runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestRunCampaignFile drives the -campaign-file path: rows print in spec
// order with the aggregate line, and output is identical at any -parallel.
func TestRunCampaignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	spec := `{"runs": [
		{"name": "lunch", "venue": "canteen", "attack": "cityhunter", "slot": 4, "minutes": 2, "arrivalScale": 0.4},
		{"name": "rush", "venue": "passage", "attack": "mana", "slot": 0, "minutes": 2, "arrivalScale": 0.4}
	]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	invoke := func(parallel string) string {
		var out bytes.Buffer
		err := run(context.Background(),
			[]string{"-campaign-file", path, "-seed", "3", "-parallel", parallel}, &out)
		if err != nil {
			t.Fatalf("run -parallel %s: %v", parallel, err)
		}
		return out.String()
	}
	serial := invoke("1")
	for _, want := range []string{"2 runs, 2 completed", "lunch", "rush", "pooled 95% CI"} {
		if !strings.Contains(serial, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, serial)
		}
	}
	if i, j := strings.Index(serial, "lunch"), strings.Index(serial, "rush"); i > j {
		t.Error("rows not in spec order")
	}
	if parallel := invoke("2"); parallel != serial {
		t.Errorf("-parallel 2 output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestRunDeploymentFile drives the -deployment path: a two-site plan prints
// the header with the knowledge plane, one row per site, and the pooled
// tally, and the same seed reproduces byte-identical output.
func TestRunDeploymentFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.json")
	plan := cityhunter.DeploymentConfig{
		Sites:        []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.PassageVenue()},
		Knowledge:    cityhunter.Shared,
		RoamFraction: 0.5,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = cityhunter.SaveDeployment(f, plan)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("save plan: %v", err)
	}

	invoke := func() string {
		var out bytes.Buffer
		err := run(context.Background(),
			[]string{"-deployment", path, "-attack", "cityhunter", "-minutes", "2", "-seed", "3"}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	text := invoke()
	for _, want := range []string{"2 sites", "shared knowledge plane", "canteen", "passage", "pooled:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, text)
		}
	}
	if again := invoke(); again != text {
		t.Errorf("same-seed deployment runs diverged:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}

	// A broken plan surfaces the load error before any simulation starts.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"knowledge":"telepathy","sites":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-deployment", bad}, &out); err == nil ||
		!strings.Contains(err.Error(), "telepathy") {
		t.Fatalf("err = %v, want unknown-knowledge-plane complaint", err)
	}
}

// TestRunDeploymentPopulation drives the level-of-detail flags: -population
// adds the far-field tier to a -deployment run and the output reports
// promoted-client accounting; without a deployment the flag is refused.
func TestRunDeploymentPopulation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.json")
	plan := cityhunter.DeploymentConfig{
		Sites: []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.StationVenue()},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = cityhunter.SaveDeployment(f, plan)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("save plan: %v", err)
	}

	invoke := func() string {
		var out bytes.Buffer
		err := run(context.Background(),
			[]string{"-deployment", path, "-attack", "cityhunter", "-minutes", "20",
				"-seed", "3", "-population", "2000", "-lod-radius", "80"}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	text := invoke()
	for _, want := range []string{"far field: 2000 pedestrians", "promotions", "site canteen:", "site railway station:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, text)
		}
	}
	if again := invoke(); again != text {
		t.Errorf("same-seed far-field runs diverged:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}

	// -population with no -deployment plan hunts the default city-scale
	// trio instead of erroring.
	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"-population", "100", "-minutes", "5"}, &out); err != nil {
		t.Fatalf("default city-scale run: %v", err)
	}
	for _, want := range []string{"city-scale deployment: 3 sites", "far field: 100 pedestrians"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("city-scale output missing %q\n--- output ---\n%s", want, out.String())
		}
	}
}

// TestRunDeploymentPartitions drives the -partitions flag: 0 selects the
// conservative parallel engine with one partition per site, an explicit
// count produces identical output (partition-count invariance through the
// CLI), and invalid or unsupported combinations fail before any
// simulation starts.
func TestRunDeploymentPartitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.json")
	plan := cityhunter.DeploymentConfig{
		Sites:        []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.StationVenue()},
		RoamFraction: 0.5,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = cityhunter.SaveDeployment(f, plan)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("save plan: %v", err)
	}

	invoke := func(parts string) string {
		var out bytes.Buffer
		err := run(context.Background(),
			[]string{"-deployment", path, "-attack", "cityhunter", "-minutes", "10",
				"-seed", "3", "-partitions", parts}, &out)
		if err != nil {
			t.Fatalf("run -partitions %s: %v", parts, err)
		}
		return out.String()
	}
	auto := invoke("0")
	for _, want := range []string{"2 sites", "canteen", "railway station", "pooled:"} {
		if !strings.Contains(auto, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, auto)
		}
	}
	if again := invoke("0"); again != auto {
		t.Errorf("same-seed partitioned runs diverged:\n--- first ---\n%s\n--- second ---\n%s", auto, again)
	}
	if explicit := invoke("2"); explicit != auto {
		t.Errorf("-partitions 2 diverged from -partitions 0:\n--- auto ---\n%s\n--- explicit ---\n%s", auto, explicit)
	}

	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"-deployment", path, "-partitions", "-2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-partitions -2 invalid") {
		t.Fatalf("err = %v, want invalid-partitions complaint", err)
	}

	// A shared knowledge plane has zero lookahead; the partitioned engine
	// refuses it before the run starts.
	shared := filepath.Join(t.TempDir(), "shared.json")
	splan := plan
	splan.Knowledge = cityhunter.Shared
	sf, err := os.Create(shared)
	if err != nil {
		t.Fatal(err)
	}
	err = cityhunter.SaveDeployment(sf, splan)
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("save shared plan: %v", err)
	}
	out.Reset()
	if err := run(context.Background(),
		[]string{"-deployment", shared, "-partitions", "0", "-minutes", "2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "shared knowledge") {
		t.Fatalf("err = %v, want shared-knowledge rejection", err)
	}
}

// TestRunCampaignFileBadSpec: load errors surface with the offending run
// named, before any simulation starts.
func TestRunCampaignFileBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	spec := `{"runs": [{"name": "x", "venue": "casino", "attack": "karma", "slot": 0, "minutes": 5}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{"-campaign-file", path}, &out)
	if err == nil || !strings.Contains(err.Error(), `unknown venue "casino"`) {
		t.Fatalf("err = %v, want unknown-venue complaint", err)
	}
}

// TestRunProfileFlags drives the pprof wiring: -cpuprofile and -memprofile
// must produce non-empty profile files, and an unwritable profile path must
// surface as an error before the simulation starts.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-minutes", "1", "-seed", "7",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}

	err = run(context.Background(), []string{
		"-minutes", "1",
		"-cpuprofile", filepath.Join(dir, "no-such-dir", "cpu.pprof"),
	}, &out)
	if err == nil {
		t.Error("unwritable -cpuprofile path accepted")
	}
}
