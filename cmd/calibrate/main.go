// Command calibrate is the calibration harness behind pnl.DefaultConfig: it
// sweeps phone-population parameters and prints the emergent attack rates
// next to the paper's targets, which is how the frozen defaults in
// EXPERIMENTS.md ("Calibration") were chosen. Re-run it after changing the
// city or PNL models to re-check the bands.
//
// Each run enables the metrics registry, so the per-run line is read from
// the same deterministic snapshot that cityhunter-sim -metrics prints.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/citygen"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/pnl"
	"cityhunter/internal/scenario"
)

func main() {
	city, err := citygen.Generate(citygen.DefaultConfig(7))
	if err != nil {
		panic(err)
	}
	hm, err := heatmap.FromPhotos(city.Bounds, 200, city.Photos)
	if err != nil {
		panic(err)
	}

	sampleRng := rand.New(rand.NewSource(99))
	sampled, err := city.DB.SampleCrowdsourced(sampleRng, 0.35, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("wigle: full=%d sampled=%d records\n", city.DB.Len(), sampled.Len())

	configs := []pnl.Config{pnl.DefaultConfig()}

	for _, pc := range configs {
		model, err := pnl.NewModel(city.DB, hm, pc)
		if err != nil {
			panic(err)
		}
		fmt.Printf("user=%.2f exp=%.2f\n", pc.PublicUserFraction, pc.AdoptionExponent)

		run := func(v scenario.Venue, kind scenario.AttackKind, slot int) *scenario.Result {
			cfg := scenario.Config{
				City: city, HeatMap: hm, PNL: model, Venue: v, Attack: kind, WiGLE: sampled,
				DirectProberFraction: 0.15, Seed: 11,
				Metrics: true,
			}
			res, err := scenario.Run(cfg, slot, 30*time.Minute)
			if err != nil {
				panic(err)
			}
			b := res.Breakdown()
			m := res.Metrics
			fmt.Printf("  %-10.10s %-26s %s  src w/d/c=%d/%d/%d buf p/f=%d/%d\n",
				v.Name, res.Attack, res.Tally,
				b.FromWiGLE, b.FromDirect, b.FromCarrier, b.FromPopularity, b.FromFreshness)
			fmt.Printf("    metrics: replies=%.0f responses=%.0f harvested=%.0f adaptations=%.0f pb/fb=%.0f/%.0f\n",
				m.Value("core_broadcast_replies"),
				m.Value("attack_probe_responses_sent"),
				m.Value("core_harvested_ssids"),
				m.Value("core_adaptations"),
				m.Value("core_pb_size"), m.Value("core_fb_size"))
			return res
		}
		run(scenario.CanteenVenue(), scenario.MANA, 4)
		run(scenario.CanteenVenue(), scenario.KARMA, 4)
		c := run(scenario.CanteenVenue(), scenario.CityHunter, 4)
		// Fig 2a: mean SSIDs sent to connected broadcast clients.
		tot, n := 0, 0
		for _, o := range c.Outcomes {
			if o.Connected && !o.DirectProber {
				tot += o.SSIDsSent
				n++
			}
		}
		if n > 0 {
			fmt.Printf("    fig2a mean sent (connected, bcast) = %d over %d victims\n", tot/n, n)
		}
		p := run(scenario.PassageVenue(), scenario.CityHunter, 0)
		// Fig 2b: histogram of SSIDs sent to broadcast clients in passage.
		bins := map[int]int{}
		bn := 0
		for _, o := range p.Outcomes {
			if o.Probed && !o.DirectProber {
				bins[o.SSIDsSent/40*40]++
				bn++
			}
		}
		fmt.Printf("    fig2b bins: 0:%.0f%% 40:%.0f%% 80:%.0f%% 120:%.0f%%\n",
			100*float64(bins[0])/float64(bn), 100*float64(bins[40])/float64(bn),
			100*float64(bins[80])/float64(bn), 100*float64(bins[120])/float64(bn))
	}
}
