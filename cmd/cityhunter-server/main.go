// Command cityhunter-server is the long-running campaign service: an
// HTTP/JSON job API that accepts plan envelopes (venue, deployment or
// campaign — see cityhunter.SavePlan), runs them on a shared bounded
// campaign pool, streams per-job progress over SSE, and persists results
// in a content-addressed store. Submitting an identical plan again is a
// cache hit; resubmitting a cancelled or drained campaign resumes from
// its completed specs.
//
// Usage:
//
//	cityhunter-server [flags]
//
//	-addr        listen address                  (default 127.0.0.1:9137)
//	-store       result store directory         (default cityhunter-store)
//	-workers     per-job campaign pool width    (default 0 = GOMAXPROCS)
//	-max-jobs    concurrently running jobs      (default 1)
//	-partitions  default engine for deployment plans that don't pick one:
//	             0 = one partition per site, N = explicit count,
//	             -1 = classic serial engine     (default -1)
//
// Endpoints:
//
//	POST   /api/v1/jobs               submit {"plan": <envelope>, "seed": N, ...}
//	GET    /api/v1/jobs               list jobs
//	GET    /api/v1/jobs/{id}          job status
//	DELETE /api/v1/jobs/{id}          cancel (checkpoints survive)
//	GET    /api/v1/jobs/{id}/result   final result JSON
//	GET    /api/v1/jobs/{id}/events   SSE job event stream
//	GET    /metrics /runs /events     merged live telemetry
//	GET    /debug/pprof               process profiling
//
// SIGTERM or SIGINT drains gracefully: in-flight specs finish and
// checkpoint, queued jobs move to checkpointed, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cityhunter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cityhunter-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cityhunter-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9137", "listen address")
	store := fs.String("store", "cityhunter-store", "content-addressed result store directory")
	workers := fs.Int("workers", 0, "per-job campaign pool width (0 = GOMAXPROCS)")
	maxJobs := fs.Int("max-jobs", 1, "concurrently running jobs")
	partitions := fs.Int("partitions", -1, "default deployment engine: 0 = one partition per site, N = explicit count, -1 = serial engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var defaultPartitions int
	switch {
	case *partitions < -1:
		return fmt.Errorf("-partitions %d invalid: use -1 (serial), 0 (one per site), or a positive count", *partitions)
	case *partitions == -1:
		defaultPartitions = 0
	case *partitions == 0:
		defaultPartitions = cityhunter.AutoPartitions
	default:
		defaultPartitions = *partitions
	}

	srv, err := cityhunter.NewCampaignServer(cityhunter.CampaignServerConfig{
		StoreDir:          *store,
		Workers:           *workers,
		MaxJobs:           *maxJobs,
		DefaultPartitions: defaultPartitions,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("cityhunter-server: listening on http://%s (store %s)\n", bound, *store)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	fmt.Printf("cityhunter-server: %v — draining (in-flight specs finish and checkpoint)\n", s)
	srv.Shutdown()
	fmt.Println("cityhunter-server: drained")
	return nil
}
