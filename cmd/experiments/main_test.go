package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProfileFlagParsing pins the pprof flag wiring: an unwritable
// -cpuprofile path must fail fast (before the expensive world generation),
// and an unknown flag must be rejected by the flag set.
func TestRunProfileFlagParsing(t *testing.T) {
	err := run(context.Background(), []string{
		"-cpuprofile", filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"),
	})
	if err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
	if !strings.Contains(err.Error(), "cpu profile") {
		t.Errorf("error %q does not mention the cpu profile", err)
	}

	if err := run(context.Background(), []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
