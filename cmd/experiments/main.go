// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the index and EXPERIMENTS.md for measured
// results).
//
// Usage:
//
//	experiments [-seed N] [-slot-minutes M] [-scale F] [-only name,...]
//
// The defaults run the full-scale harness: 30-minute table experiments and
// a 4-venue × 12-hour-slot grid at the paper's crowd rates (a few minutes
// of CPU). -slot-minutes and -scale shrink the runs for quick looks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"cityhunter"
	"cityhunter/internal/experiments"
	"cityhunter/internal/prof"
	"cityhunter/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 1, "world seed")
		slotMinutes = fs.Int("slot-minutes", 0, "cap each run at this many minutes (0 = full length)")
		scale       = fs.Float64("scale", 1, "crowd arrival-rate multiplier")
		only        = fs.String("only", "", "comma-separated subset: table1,table2,table3,table4,figure1,figure2,figure4,figure5,figure6,extensions,ablation,countermeasures,randomization,robustness,sensitivity,multisite,cityscale")
		heatPNG     = fs.String("heatmap-png", "", "also render the Figure 4 heat map to this PNG file")
		replicas    = fs.Int("replicas", 5, "seeds for the robustness replication")
		jsonPath    = fs.String("json", "", "also write every generated result as JSON to this file")
		mdPath      = fs.String("markdown", "", "also write a paper-vs-measured markdown report to this file")
		parallel    = fs.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = serial)")
		progress    = fs.Bool("progress", false, "stream per-run campaign progress to stderr")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole harness to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		monitorAddr = fs.String("monitor", "", "serve live telemetry on this address while the harness runs (/metrics, /runs, /events, /debug/pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
		}
	}()

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, n := range strings.Split(*only, ",") {
			if strings.TrimSpace(n) == name {
				return true
			}
		}
		return false
	}

	fmt.Printf("generating world (seed %d)...\n", *seed)
	start := time.Now()
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("world ready in %v: %d APs, %d in the attacker's WiGLE snapshot\n\n",
		time.Since(start).Truncate(time.Millisecond), world.City.DB.Len(), world.WiGLE.Len())

	if *heatPNG != "" {
		f, err := os.Create(*heatPNG)
		if err != nil {
			return err
		}
		err = world.Heat.RenderPNG(f, 4)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote heat map to %s\n\n", *heatPNG)
	}

	opts := experiments.Options{
		SlotDuration: time.Duration(*slotMinutes) * time.Minute,
		ArrivalScale: *scale,
	}
	opts.Pool.Workers = *parallel
	if *monitorAddr != "" {
		mon, bound, err := cityhunter.SharedMonitor(*monitorAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "monitor listening on http://%s — try /metrics, /runs, /events (SSE), /debug/pprof\n", bound)
		opts.Pool.Publisher = mon
	}
	if *progress {
		opts.Pool.OnProgress = func(p cityhunter.CampaignProgress) {
			status := "ok"
			if p.Err != nil {
				status = p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %s\n", p.Done, p.Total, p.Name, status)
		}
	}

	collected := make(map[string]any)

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	jobs := []job{
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(ctx, world, opts) }},
		{"figure1", func() (fmt.Stringer, error) { return experiments.Figure1(ctx, world, opts) }},
		{"table2", func() (fmt.Stringer, error) { return experiments.Table2(ctx, world, opts) }},
		{"figure2", func() (fmt.Stringer, error) { return experiments.Figure2(ctx, world, opts) }},
		{"table3", func() (fmt.Stringer, error) { return experiments.Table3(ctx, world, opts) }},
		{"table4", func() (fmt.Stringer, error) { return experiments.Table4(ctx, world, opts) }},
		{"figure4", func() (fmt.Stringer, error) { return experiments.Figure4(ctx, world, opts) }},
		{"extensions", func() (fmt.Stringer, error) { return experiments.Extensions(ctx, world, opts) }},
		{"ablation", func() (fmt.Stringer, error) { return experiments.Ablation(ctx, world, opts) }},
		{"countermeasures", func() (fmt.Stringer, error) { return experiments.Countermeasures(ctx, world, opts) }},
		{"randomization", func() (fmt.Stringer, error) { return experiments.Randomization(ctx, world, opts) }},
		{"robustness", func() (fmt.Stringer, error) { return experiments.Robustness(ctx, world, opts, *replicas) }},
		{"sensitivity", func() (fmt.Stringer, error) { return experiments.Sensitivity(ctx, world, opts) }},
		{"multisite", func() (fmt.Stringer, error) { return experiments.MultiSite(ctx, world, opts) }},
		{"cityscale", func() (fmt.Stringer, error) { return experiments.CityScale(ctx, world, opts) }},
	}
	for _, j := range jobs {
		if !want(j.name) {
			continue
		}
		t0 := time.Now()
		out, err := j.run()
		if err != nil {
			return err
		}
		collected[j.name] = out
		fmt.Println(out)
		fmt.Printf("(%s in %v)\n\n", j.name, time.Since(t0).Truncate(time.Millisecond))
	}

	if want("figure5") || want("figure6") {
		t0 := time.Now()
		grid, err := experiments.Grid(ctx, world, opts)
		if err != nil {
			return err
		}
		collected["grid"] = grid
		if want("figure5") {
			fmt.Println(grid.Figure5())
		}
		if want("figure6") {
			fmt.Println(grid.Figure6())
		}
		fmt.Printf("(figure5+6 grid in %v)\n", time.Since(t0).Truncate(time.Millisecond))
	}

	if *mdPath != "" {
		in := report.Inputs{Seed: *seed}
		for _, v := range collected {
			switch r := v.(type) {
			case *experiments.Table1Result:
				in.Table1 = r
			case *experiments.Table2Result:
				in.Table2 = r
			case *experiments.Table3Result:
				in.Table3 = r
			case *experiments.Table4Result:
				in.Table4 = r
			case *experiments.Figure1Result:
				in.Figure1 = r
			case *experiments.Figure2Result:
				in.Figure2 = r
			case *experiments.Figure4Result:
				in.Figure4 = r
			case *experiments.GridResult:
				in.Grid = r
			case *experiments.ExtensionsResult:
				in.Extensions = r
			case *experiments.AblationResult:
				in.Ablation = r
			case *experiments.CountermeasuresResult:
				in.Countermeasures = r
			case *experiments.RobustnessResult:
				in.Robustness = r
			case *experiments.SensitivityResult:
				in.Sensitivity = r
			}
		}
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		err = report.Write(f, in)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote markdown report to %s\n", *mdPath)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(collected)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote machine-readable results to %s\n", *jsonPath)
	}
	return nil
}
