// Command citygen generates a synthetic city and writes its
// WiGLE-substitute access-point database (and, optionally, the attacker's
// gap-sampled snapshot) as JSON, so experiments can reuse one environment
// across processes.
//
// Usage:
//
//	citygen -out city.json [-seed N] [-sampled-out wigle.json] [-stats]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cityhunter/internal/citygen"
	"cityhunter/internal/heatmap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "citygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("citygen", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "write the full AP database JSON here")
		sampledOut = fs.String("sampled-out", "", "also write the crowd-sourced (gap-sampled) snapshot here")
		seed       = fs.Int64("seed", 1, "generation seed")
		missSmall  = fs.Float64("miss-small", 0.35, "probability a ≤3-AP network is missing from the snapshot")
		missMid    = fs.Float64("miss-mid", 0.05, "probability a 4-20-AP network is missing from the snapshot")
		stats      = fs.Bool("stats", false, "print city statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	city, err := citygen.Generate(citygen.DefaultConfig(*seed))
	if err != nil {
		return err
	}

	if *stats {
		open := 0
		for _, r := range city.DB.Records() {
			if r.Open {
				open++
			}
		}
		fmt.Printf("city: %d APs (%d open), %d photos, %d venues\n",
			city.DB.Len(), open, len(city.Photos), len(city.Hotspots))
		hm, err := heatmap.FromPhotos(city.Bounds, 200, city.Photos)
		if err != nil {
			return err
		}
		fmt.Println("top-5 SSIDs by heat value:")
		ranked := hm.RankByHeat(city.DB.OpenPositionsBySSID())
		for i := 0; i < 5 && i < len(ranked); i++ {
			fmt.Printf("  %d. %-28s heat=%d\n", i+1, ranked[i].SSID, ranked[i].Heat)
		}
	}

	if *out != "" {
		if err := city.DB.SaveFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", city.DB.Len(), *out)
	}
	if *sampledOut != "" {
		sampled, err := city.DB.SampleCrowdsourced(rand.New(rand.NewSource(*seed+999)), *missSmall, *missMid)
		if err != nil {
			return err
		}
		if err := sampled.SaveFile(*sampledOut); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", sampled.Len(), *sampledOut)
	}
	if *out == "" && *sampledOut == "" && !*stats {
		return fmt.Errorf("nothing to do: pass -out, -sampled-out or -stats")
	}
	return nil
}
