package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const rawBench = `goos: linux
goarch: amd64
BenchmarkCanteenRun 	       5	  88891781 ns/op	12890168 B/op	  147621 allocs/op
BenchmarkMarshalProbeResponse-8 	 2000000	        42.26 ns/op	      96 B/op	       1 allocs/op
BenchmarkEngineScheduleRun 	  100000	       189.5 ns/op	      24 B/op	       1 allocs/op
PASS
ok  	cityhunter	1.556s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(res), res)
	}
	cr := res["BenchmarkCanteenRun"]
	if cr.NsPerOp != 88891781 || cr.BytesPerOp != 12890168 || cr.AllocsPerOp != 147621 {
		t.Errorf("CanteenRun = %+v", cr)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := res["BenchmarkMarshalProbeResponse"]; !ok {
		t.Errorf("suffixed name not normalised: %v", res)
	}
}

func TestCompareThresholds(t *testing.T) {
	rec := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 100},
	}
	var out bytes.Buffer

	// Within limits: 20 % slower ns, 4 % more allocs.
	cur := map[string]Result{
		"BenchmarkA": {NsPerOp: 1200, AllocsPerOp: 104},
		"BenchmarkB": {NsPerOp: 900, AllocsPerOp: 90},
	}
	if err := compare(&out, "BENCH_T.json", rec, cur, 0.30, 0.05); err != nil {
		t.Errorf("within-limit comparison failed: %v\n%s", err, out.String())
	}

	// ns/op regression past the threshold.
	cur["BenchmarkA"] = Result{NsPerOp: 1400, AllocsPerOp: 100}
	if err := compare(&out, "BENCH_T.json", rec, cur, 0.30, 0.05); err == nil {
		t.Error("40% ns/op regression passed")
	}

	// allocs/op regression past the tolerance.
	cur["BenchmarkA"] = Result{NsPerOp: 1000, AllocsPerOp: 120}
	if err := compare(&out, "BENCH_T.json", rec, cur, 0.30, 0.05); err == nil {
		t.Error("20% allocs/op regression passed")
	}

	// A benchmark recorded in the snapshot but missing from the run fails.
	delete(cur, "BenchmarkA")
	if err := compare(&out, "BENCH_T.json", rec, cur, 0.30, 0.05); err == nil {
		t.Error("missing benchmark passed")
	}
}

func TestSnapshotRoundTripAndCheck(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(raw, []byte(rawBench), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "BENCH_TEST.json")

	// Snapshot mode from a raw capture, embedding the same capture as the
	// baseline.
	var out bytes.Buffer
	err := run([]string{
		"-from", raw, "-o", snapPath,
		"-baseline-from", raw, "-baseline-label", "pre", "-label", "post",
	}, &out)
	if err != nil {
		t.Fatalf("snapshot mode: %v", err)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != schemaID || snap.Baseline == nil || snap.Baseline.Label != "pre" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Current.Results) != 3 {
		t.Fatalf("current results = %d, want 3", len(snap.Current.Results))
	}

	// Check mode against itself (via -from, so no benchmarks actually run)
	// must pass: identical numbers are within every threshold.
	out.Reset()
	err = run([]string{"-check", "-snapshot", snapPath, "-from", raw}, &out)
	if err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within limits of "+snapPath) {
		t.Errorf("check summary does not name the snapshot:\n%s", out.String())
	}
	if !strings.Contains(out.String(), snapPath+" (explicit)") {
		t.Errorf("check output does not announce the explicit snapshot:\n%s", out.String())
	}

	// Check mode without -snapshot auto-discovers BENCH_N.json in the
	// working directory; with none present it is an error.
	chdir(t, dir)
	if err := run([]string{"-check", "-from", raw}, &out); err == nil {
		t.Error("-check with no discoverable snapshot accepted")
	}
}

// chdir switches the working directory for the test, restoring it on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestDiscoverSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_3.json", "BENCH_10.json", "BENCH_abc.json", "BENCH.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := discoverSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("discovered %s, want BENCH_10.json (highest numeric N)", got)
	}

	if _, err := discoverSnapshot(t.TempDir()); err == nil {
		t.Error("empty directory yielded a snapshot")
	}
}

// TestCheckAutoDiscovery runs check mode end-to-end with no -snapshot flag:
// the latest BENCH_N.json in the working directory is picked up.
func TestCheckAutoDiscovery(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(raw, []byte(rawBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// Two snapshots; BENCH_2.json is the latest and the only valid one, so
	// discovery picking BENCH_1.json would fail the schema check.
	if err := run([]string{"-from", raw, "-o", filepath.Join(dir, "BENCH_2.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"), []byte(`{"schema":"bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	chdir(t, dir)
	out.Reset()
	if err := run([]string{"-check", "-from", raw}, &out); err != nil {
		t.Fatalf("auto-discovered check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BENCH_2.json (auto-discovered)") {
		t.Errorf("output missing discovery notice:\n%s", out.String())
	}
}
