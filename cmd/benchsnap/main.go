// Command benchsnap records and checks benchmark snapshots for the
// performance tiers of this repository.
//
// Snapshot mode (the default) runs the tier benchmarks and writes a JSON
// snapshot (ns/op, B/op, allocs/op per benchmark):
//
//	benchsnap -o BENCH_4.json \
//	    [-baseline-from raw.txt -baseline-label "pre-PR4 @fcb1fdc"]
//
// -baseline-from embeds a previously captured `go test -bench -benchmem`
// output as the snapshot's baseline section, so one file carries the
// before/after pair a perf PR is judged by.
//
// Check mode re-runs the tiers and compares against a committed snapshot's
// current section, failing (exit 1) on regression:
//
//	benchsnap -check [-snapshot BENCH_4.json] [-threshold 0.30] [-alloc-tol 0.05]
//
// When -snapshot is omitted in check mode, the latest committed snapshot is
// auto-discovered: the BENCH_N.json file in the current directory with the
// highest numeric N.
//
// ns/op may regress by at most -threshold (fractional; default 30 %,
// generous because shared CI machines are noisy). allocs/op is held much
// tighter: -alloc-tol (default 5 %) absorbs only the iteration-count jitter
// of the macro benchmarks, whose per-run seeds — and therefore allocation
// counts — vary slightly with b.N; a real allocation regression on the hot
// paths jumps far past it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// tier is one benchmark group; together the tiers cover every hot path:
// the end-to-end run, the campaign grid, the attacker reply engine, frame
// marshalling, geometry queries, and the event/delivery core.
type tier struct {
	pkg       string
	bench     string
	benchtime string
}

var tiers = []tier{
	{pkg: ".", bench: "^BenchmarkCanteenRun$", benchtime: "5x"},
	{pkg: ".", bench: "^BenchmarkCanteenRunRandomized$", benchtime: "5x"},
	{pkg: ".", bench: "^BenchmarkCanteenRunMonitored$", benchtime: "5x"},
	{pkg: ".", bench: "^BenchmarkCityScale$", benchtime: "3x"},
	{pkg: ".", bench: "^BenchmarkMultiSite", benchtime: "2x"},
	{pkg: "./internal/campaign", bench: "^BenchmarkCampaignGrid$", benchtime: "2x"},
	{pkg: "./internal/core", bench: "^BenchmarkBroadcastReply", benchtime: "200000x"},
	{pkg: "./internal/ieee80211", bench: "Marshal", benchtime: "2000000x"},
	{pkg: "./internal/geo", bench: "^(BenchmarkWithinRadius|BenchmarkNearest100)$", benchtime: "100000x"},
	{pkg: "./internal/sim", bench: ".", benchtime: "100000x"},
}

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Section is one labelled set of measurements.
type Section struct {
	Label   string            `json:"label"`
	Results map[string]Result `json:"results"`
}

// Snapshot is the on-disk BENCH_N.json document.
type Snapshot struct {
	Schema   string   `json:"schema"`
	Go       string   `json:"go"`
	Baseline *Section `json:"baseline,omitempty"`
	Current  Section  `json:"current"`
}

const schemaID = "cityhunter-benchsnap/1"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	var (
		outPath       = fs.String("o", "BENCH.json", "snapshot file to write (snapshot mode)")
		check         = fs.Bool("check", false, "re-run the tiers and compare against -snapshot instead of writing")
		snapshotPath  = fs.String("snapshot", "", "committed snapshot to check against (check mode); empty auto-discovers the highest BENCH_N.json")
		threshold     = fs.Float64("threshold", 0.30, "maximum fractional ns/op regression tolerated in check mode")
		allocTol      = fs.Float64("alloc-tol", 0.05, "maximum fractional allocs/op regression tolerated in check mode")
		baselineFrom  = fs.String("baseline-from", "", "raw `go test -bench -benchmem` output to embed as the baseline section")
		baselineLabel = fs.String("baseline-label", "baseline", "label for the embedded baseline section")
		currentLabel  = fs.String("label", "current", "label for the freshly measured section")
		fromRaw       = fs.String("from", "", "parse this raw benchmark output instead of running the tiers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var current map[string]Result
	var err error
	if *fromRaw != "" {
		current, err = parseFile(*fromRaw)
	} else {
		current, err = runTiers(out)
	}
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results measured")
	}

	if *check {
		how := "explicit"
		if *snapshotPath == "" {
			*snapshotPath, err = discoverSnapshot(".")
			if err != nil {
				return err
			}
			how = "auto-discovered"
		}
		fmt.Fprintf(out, "checking against %s (%s)\n", *snapshotPath, how)
		snap, err := loadSnapshot(*snapshotPath)
		if err != nil {
			return err
		}
		return compare(out, *snapshotPath, snap.Current.Results, current, *threshold, *allocTol)
	}

	snap := Snapshot{
		Schema:  schemaID,
		Go:      runtime.Version(),
		Current: Section{Label: *currentLabel, Results: current},
	}
	if *baselineFrom != "" {
		base, err := parseFile(*baselineFrom)
		if err != nil {
			return err
		}
		snap.Baseline = &Section{Label: *baselineLabel, Results: base}
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d benchmark results to %s\n", len(current), *outPath)
	return nil
}

// runTiers executes every tier benchmark and merges the parsed results.
func runTiers(out io.Writer) (map[string]Result, error) {
	merged := make(map[string]Result)
	for _, t := range tiers {
		fmt.Fprintf(out, "bench %s (%s, %s)\n", t.pkg, t.bench, t.benchtime)
		cmd := exec.Command("go", "test", "-run=^$",
			"-bench="+t.bench, "-benchmem", "-benchtime="+t.benchtime, t.pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %v\n%s", t.pkg, err, raw)
		}
		res, err := parseBench(strings.NewReader(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", t.pkg, err)
		}
		for name, r := range res {
			merged[name] = r
		}
	}
	return merged, nil
}

// parseBench reads standard `go test -bench -benchmem` output lines:
//
//	BenchmarkCanteenRun-8   5   79441493 ns/op   10491353 B/op   61021 allocs/op
//
// The GOMAXPROCS suffix is stripped so results compare across machines.
func parseBench(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seen {
			results[name] = res
		}
	}
	return results, sc.Err()
}

func parseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("parse %s: no benchmark lines found", path)
	}
	return res, nil
}

// discoverSnapshot returns the BENCH_N.json file in dir with the highest
// numeric N — the latest committed snapshot under the repo's naming
// convention (one snapshot per perf PR).
func discoverSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		base := filepath.Base(m)
		numeric := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
		n, err := strconv.Atoi(numeric)
		if err != nil || n < 0 {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_N.json snapshot found in %s (pass -snapshot explicitly)", dir)
	}
	return best, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if snap.Schema != schemaID {
		return nil, fmt.Errorf("%s: unknown schema %q", path, snap.Schema)
	}
	return &snap, nil
}

// compare reports every benchmark against the recorded snapshot and fails
// when ns/op regresses past threshold or allocs/op past allocTol.
func compare(out io.Writer, snapshotName string, recorded, current map[string]Result, threshold, allocTol float64) error {
	names := make([]string, 0, len(recorded))
	for name := range recorded {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		rec := recorded[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(out, "MISSING %s: recorded in snapshot but not measured\n", name)
			failures++
			continue
		}
		nsDelta := frac(cur.NsPerOp, rec.NsPerOp)
		allocDelta := frac(cur.AllocsPerOp, rec.AllocsPerOp)
		status := "ok"
		switch {
		case nsDelta > threshold:
			status = fmt.Sprintf("FAIL ns/op regressed %.1f%% (limit %.0f%%)", nsDelta*100, threshold*100)
			failures++
		case allocDelta > allocTol:
			status = fmt.Sprintf("FAIL allocs/op regressed %.1f%% (limit %.0f%%)", allocDelta*100, allocTol*100)
			failures++
		}
		fmt.Fprintf(out, "%-42s ns/op %12.1f -> %12.1f (%+6.1f%%)  allocs/op %9.0f -> %9.0f (%+6.1f%%)  %s\n",
			name, rec.NsPerOp, cur.NsPerOp, nsDelta*100, rec.AllocsPerOp, cur.AllocsPerOp, allocDelta*100, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed against %s", failures, snapshotName)
	}
	fmt.Fprintf(out, "all %d benchmarks within limits of %s\n", len(names), snapshotName)
	return nil
}

// frac returns the fractional change from rec to cur, treating a zero
// recorded value as unregressable unless the current value is positive.
func frac(cur, rec float64) float64 {
	if rec == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - rec) / rec
}
