// Command promlint validates Prometheus text exposition (format 0.0.4)
// read from files or stdin, in the spirit of `promtool check metrics` but
// with zero dependencies. CI pipes the monitor's /metrics page through it;
// any problem is a non-zero exit.
//
// Usage:
//
//	promlint [file ...]        # no files = stdin
package main

import (
	"fmt"
	"io"
	"os"

	"cityhunter/internal/promlint"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	type input struct {
		name string
		r    io.Reader
		c    io.Closer
	}
	var inputs []input
	if len(args) == 0 {
		inputs = append(inputs, input{name: "<stdin>", r: os.Stdin})
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		inputs = append(inputs, input{name: path, r: f, c: f})
	}

	bad := 0
	for _, in := range inputs {
		probs, err := promlint.Lint(in.r)
		if in.c != nil {
			in.c.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", in.name, err)
		}
		for _, p := range probs {
			fmt.Fprintf(out, "%s:%s\n", in.name, p)
		}
		bad += len(probs)
	}
	if bad > 0 {
		return fmt.Errorf("%d problem(s)", bad)
	}
	fmt.Fprintln(out, "exposition clean")
	return nil
}
