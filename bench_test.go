// Benchmarks that regenerate every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment). They run the
// shared generators from internal/experiments at a reduced scale so the
// full suite stays in benchmark-friendly time; cmd/experiments runs the
// same code at full scale. Each benchmark logs the rendered table/series
// once, so `go test -bench=. -benchmem -v` doubles as a results report.
package cityhunter_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"cityhunter"
	"cityhunter/internal/experiments"
)

var (
	benchWorldOnce sync.Once
	benchWorldVal  *cityhunter.World
	benchWorldErr  error
)

// benchWorld builds the shared world once per benchmark binary.
func benchWorld(b *testing.B) *cityhunter.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorldVal, benchWorldErr = cityhunter.NewWorld(cityhunter.WithSeed(1))
	})
	if benchWorldErr != nil {
		b.Fatalf("NewWorld: %v", benchWorldErr)
	}
	return benchWorldVal
}

// benchOptions is the reduced scale used by all experiment benchmarks:
// 10-minute runs at 60 % crowd rates.
func benchOptions() experiments.Options {
	return experiments.Options{
		SlotDuration: 10 * time.Minute,
		ArrivalScale: 0.6,
	}
}

// BenchmarkTable1 regenerates Table I (KARMA vs MANA, canteen).
func BenchmarkTable1(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (MANA DB growth vs h_b^r).
func BenchmarkFigure1(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable2 regenerates Table II (MANA vs preliminary City-Hunter).
func BenchmarkTable2(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (SSIDs tried per client).
func BenchmarkFigure2(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable3 regenerates Table III (preliminary City-Hunter, passage).
func BenchmarkTable3(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable4 regenerates Table IV (AP-count vs heat rankings).
func BenchmarkTable4(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (heat-map hot cells).
func BenchmarkFigure4(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure5 regenerates the Figure 5 grid (4 venues × 12 slots) at
// reduced per-slot duration; BenchmarkFigure6 renders its breakdown.
func BenchmarkFigure5(b *testing.B) {
	w := benchWorld(b)
	opts := benchOptions()
	opts.SlotDuration = 5 * time.Minute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Grid(context.Background(), w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + grid.Figure5())
		}
	}
}

// BenchmarkFigure6 regenerates the Figure 6 breakdown from the same grid.
func BenchmarkFigure6(b *testing.B) {
	w := benchWorld(b)
	opts := benchOptions()
	opts.SlotDuration = 5 * time.Minute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Grid(context.Background(), w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + grid.Figure6())
		}
	}
}

// BenchmarkExtensions regenerates the §V-B extension comparisons.
func BenchmarkExtensions(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Extensions(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation.
func BenchmarkAblation(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkWorldGeneration measures the offline setup cost: city synthesis,
// heat map, PNL model and WiGLE sampling.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cityhunter.NewWorld(cityhunter.WithSeed(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanteenRun measures one 10-minute City-Hunter canteen run end
// to end (the workhorse of every experiment).
func BenchmarkCanteenRun(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 10*time.Minute,
			cityhunter.WithRunSeed(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanteenRunRandomized is BenchmarkCanteenRun with every phone
// rotating its MAC per scan and the composite de-anonymisation linker
// re-keying the hunter database: the side-by-side pair quantifies what the
// identity/observable split costs on the workhorse run (extra tracks,
// matcher scoring on every fresh MAC).
func BenchmarkCanteenRunRandomized(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 10*time.Minute,
			cityhunter.WithRunSeed(int64(i+1)),
			cityhunter.WithMACRandomization(1.0, cityhunter.RandomizePerScan),
			cityhunter.WithLinker(cityhunter.LinkerComposite))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanteenRunMonitored is BenchmarkCanteenRun with a live telemetry
// publisher attached (an in-process monitor server, no HTTP): the
// side-by-side pair quantifies the publisher overhead. With no publisher
// the feed is never constructed, so an unmonitored run pays nothing.
func BenchmarkCanteenRunMonitored(b *testing.B) {
	w := benchWorld(b)
	mon := cityhunter.NewMonitorServer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, 10*time.Minute,
			cityhunter.WithRunSeed(int64(i+1)),
			cityhunter.WithMonitorServer(mon))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCityScale measures the level-of-detail tier: a dozen-district
// city with a 10k-pedestrian far-field crowd, three attacked districts, and
// promotion to full fidelity only inside the radio-range boundaries. The
// cost is dominated by window precomputation plus the promoted minority, so
// this is the snapshot guard for the far-field hot path.
func BenchmarkCityScale(b *testing.B) {
	w := benchWorld(b)
	opts := experiments.Options{
		SlotDuration: 20 * time.Minute,
		ArrivalScale: 0.1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CityScale(context.Background(), w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// benchMultiSite runs the partitioned-engine snapshot workload: the
// city-scale trio with roaming phones and a far-field crowd, on either the
// classic serialized engine (parts 0) or the conservative parallel engine.
// The two benchmarks share one workload so the snapshot pair reads as a
// speedup table; on multi-core runners the partitioned engine overlaps the
// three site loops, on a single core it measures the coordination overhead.
func benchMultiSite(b *testing.B, parts int) {
	w := benchWorld(b)
	sites := []cityhunter.Venue{
		cityhunter.StationVenue(),
		cityhunter.CanteenVenue(),
		cityhunter.MallVenue(),
	}
	stops := w.City.RouteStops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.DeploySitesContext(context.Background(), sites, cityhunter.CityHunter,
			cityhunter.LunchSlot, 30*time.Minute,
			cityhunter.WithRoaming(0.3),
			cityhunter.WithPopulationScale(4000),
			cityhunter.WithLODRadius(80),
			cityhunter.WithCityRoutes(stops),
			cityhunter.WithPartitions(parts),
			cityhunter.WithRunOptions(cityhunter.WithRunSeed(int64(i+1))))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%d roams, %d promoted, pooled %v", res.Roams, res.FarField.Promoted, res.Tally)
		}
	}
}

// BenchmarkMultiSiteSerial is the classic serialized engine on the
// three-site roaming + far-field workload — the baseline of the scaling
// pair.
func BenchmarkMultiSiteSerial(b *testing.B) { benchMultiSite(b, 0) }

// BenchmarkMultiSitePartitioned is the same workload on the conservative
// parallel engine with one partition per site (DESIGN.md §5.13).
func BenchmarkMultiSitePartitioned(b *testing.B) { benchMultiSite(b, cityhunter.AutoPartitions) }

// BenchmarkCountermeasures regenerates the §VI defence report.
func BenchmarkCountermeasures(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Countermeasures(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkRobustness replicates the headline h_b across seeds.
func BenchmarkRobustness(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Robustness(context.Background(), w, benchOptions(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkSensitivity sweeps the model knobs around calibration.
func BenchmarkSensitivity(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sensitivity(context.Background(), w, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}
