package cityhunter_test

import (
	"fmt"
	"log"
	"time"

	"cityhunter"
)

// Example runs the headline experiment: City-Hunter in the canteen over
// lunch. A short run keeps the example fast; see cmd/experiments for the
// full-scale harness.
func Example() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 10*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Attack, "deployed at the", res.Venue)
	// Output: City-Hunter deployed at the canteen
}

// ExampleWorld_Run_baselines compares every attacker on the same crowd.
func ExampleWorld_Run_baselines() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	for _, kind := range []cityhunter.AttackKind{
		cityhunter.KARMA, cityhunter.MANA, cityhunter.CityHunter,
	} {
		res, err := world.Run(cityhunter.CanteenVenue(), kind,
			cityhunter.LunchSlot, 5*time.Minute,
			cityhunter.WithArrivalScale(0.5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Attack)
	}
	// Output:
	// KARMA
	// MANA
	// City-Hunter
}

// ExampleWithDeauth shows the §V-B extension: spoofed deauthentication
// frames push already-connected phones back into the scanning state.
func ExampleWithDeauth() {
	world, err := cityhunter.NewWorld(cityhunter.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 5*time.Minute,
		cityhunter.WithArrivalScale(0.5),
		cityhunter.WithDeauth(0.5 /* fraction preconnected */))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report.DeauthsSent > 0)
	// Output: true
}
